"""Socket transport: framing, mesh routing, local loopback, audit counters."""

import asyncio
import pickle

import pytest

from repro.net.socket_transport import (
    MAX_FRAME_BYTES,
    SocketTransport,
    encode_frame,
    read_frame,
    supports_unix_sockets,
)


def test_frame_roundtrip():
    payload = {"a": 1, "b": (2, 3), "c": b"bytes"}
    frame = encode_frame(payload)
    assert frame[:4] == len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)).to_bytes(4, "big")

    async def roundtrip():
        reader = asyncio.StreamReader()
        reader.feed_data(frame)
        reader.feed_eof()
        return await read_frame(reader)

    assert asyncio.run(roundtrip()) == payload


def test_oversized_length_prefix_rejected():
    async def poisoned():
        reader = asyncio.StreamReader()
        reader.feed_data((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"junk")
        with pytest.raises(ValueError, match="exceeds"):
            await read_frame(reader)

    asyncio.run(poisoned())


def _mesh_pair(tmp_path):
    """Two workers (pids {0} and {1,2}) joined over UNIX sockets."""
    addresses = {0: str(tmp_path / "w0.sock"), 1: str(tmp_path / "w1.sock")}
    owner = {0: 0, 1: 1, 2: 1}
    common = dict(base_latency_s=0.001, jitter_s=0.0, seed=0)
    a = SocketTransport(
        3, local_pids=(0,), owner=owner, worker_id=0, addresses=addresses, **common
    )
    b = SocketTransport(
        3, local_pids=(1, 2), owner=owner, worker_id=1, addresses=addresses, **common
    )
    return a, b


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_cross_worker_and_local_delivery(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            a.send(0, 1, "remote")  # crosses the socket to worker b
            b.send(1, 2, "local")  # loops back inside worker b
            b.send(2, 0, "back")  # crosses the socket to worker a
            assert await asyncio.wait_for(b.recv(1), timeout=2) == (0, "remote")
            assert await asyncio.wait_for(b.recv(2), timeout=2) == (1, "local")
            assert await asyncio.wait_for(a.recv(0), timeout=2) == (2, "back")
            # Local loopback never touches the socket mesh.
            assert a.frames_sent == 1 and b.frames_sent == 1
            assert a.frames_received == 1 and b.frames_received == 1
            assert a.misrouted_count == 0 and b.misrouted_count == 0
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_modelled_latencies_match_sim_transport(tmp_path):
    """A sharded transport draws exactly the per-link latencies the
    single-process SimTransport would — the reproducibility contract
    that keeps multi-process runs equivalent."""
    from repro.net.transport import SimTransport

    async def scenario():
        a, _b = _mesh_pair(tmp_path)
        sim = SimTransport(3, base_latency_s=0.001, jitter_s=0.004, seed=0)
        socketed = SocketTransport(
            3,
            local_pids=(0,),
            owner={0: 0, 1: 1, 2: 1},
            worker_id=0,
            addresses={},
            base_latency_s=0.001,
            jitter_s=0.004,
            seed=0,
        )
        return [
            (sim.latency(src, dst, 0.0), socketed.latency(src, dst, 0.0))
            for src in range(3)
            for dst in range(3)
            if src != dst
            for _ in range(3)
        ]

    for sim_sample, socket_sample in asyncio.run(scenario()):
        assert sim_sample == socket_sample


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_misrouted_frames_are_counted_not_dropped_silently(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            # Fault injection: worker a forgets it hosts pid 0 and
            # frames it to worker b, which does not host pid 0 either.
            a._local_pids = frozenset()
            a._owner[0] = 1
            a.send(1, 0, "lost?")
            await asyncio.sleep(0.1)
            assert b.misrouted_count == 1
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


def test_send_requires_anchor():
    transport = SocketTransport(
        2, local_pids=(0, 1), owner={0: 0, 1: 0}, worker_id=0, addresses={}
    )
    with pytest.raises(RuntimeError, match="not anchored"):
        transport.send(0, 1, "x")
