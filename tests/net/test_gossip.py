"""Gossip overlay: flooding, deduplication, sender-sleep survival."""

import asyncio

from repro.crypto.signatures import KeyRegistry
from repro.net.gossip import GossipNetwork, GossipNode, regular_topology
from repro.net.transport import SimTransport, SurgeWindow
from repro.sleepy.messages import make_vote, verification_digest


def test_regular_topology_is_connected_and_regular():
    topology = regular_topology(12, degree=4, seed=1)
    assert set(topology) == set(range(12))
    for pid, neighbors in topology.items():
        assert len(neighbors) == 4
        assert pid not in neighbors
        for q in neighbors:
            assert pid in topology[q]  # undirected


def test_tiny_networks_fall_back_to_complete_graph():
    topology = regular_topology(3, degree=4)
    assert topology[0] == (1, 2)
    assert topology[2] == (0, 1)


def _flood_scenario(n: int, degree: int, publisher: int = 0):
    async def scenario():
        registry = KeyRegistry(n, run_seed=0)
        transport = SimTransport(n, base_latency_s=0.001, jitter_s=0.001, seed=0)
        delivered: dict[int, list] = {pid: [] for pid in range(n)}
        network = GossipNetwork(
            transport,
            regular_topology(n, degree, seed=0),
            on_deliver=lambda pid, m: delivered[pid].append(m.message_id),
        )
        transport.start()
        network.start()
        vote = make_vote(registry, registry.secret_key(publisher), 0, None)
        network.nodes[publisher].publish(vote)
        await asyncio.sleep(0.1)  # >> diameter · latency
        await network.stop()
        return delivered, vote

    return asyncio.run(scenario())


def test_published_message_floods_every_node():
    delivered, vote = _flood_scenario(n=12, degree=3)
    for pid in range(12):
        assert delivered[pid] == [vote.message_id]


def test_each_node_delivers_each_message_exactly_once():
    delivered, vote = _flood_scenario(n=8, degree=4)
    for messages in delivered.values():
        assert messages.count(vote.message_id) == 1


def test_dissemination_survives_publisher_silence():
    """Once published, the message spreads without further publisher help —
    the paper's 'messages are disseminated even if the sender sleeps'."""

    async def scenario():
        n = 10
        registry = KeyRegistry(n, run_seed=0)
        transport = SimTransport(n, base_latency_s=0.001, jitter_s=0.0, seed=0)
        delivered: dict[int, list] = {pid: [] for pid in range(n)}
        network = GossipNetwork(
            transport,
            regular_topology(n, 3, seed=0),
            on_deliver=lambda pid, m: delivered[pid].append(m.message_id),
        )
        transport.start()
        network.start()
        vote = make_vote(registry, registry.secret_key(0), 0, None)
        network.nodes[0].publish(vote)
        # Kill the publisher's pump immediately: its own forwards were
        # already sent; the rest of the overlay must finish the flood.
        await network.nodes[0].stop()
        await asyncio.sleep(0.1)
        await network.stop()
        return delivered, vote

    delivered, vote = asyncio.run(scenario())
    for pid in range(10):
        assert vote.message_id in delivered[pid]


def test_transplanted_id_cannot_censor_honest_message():
    """Regression for the headline dedup bug: front-running an honest
    message's *self-reported* id must not suppress the honest original.

    The adversary floods a junk message whose memoised ``_message_id``
    slot is overwritten with the honest message's id.  Under the old
    id-keyed dedup every node marked that id seen and refused to flood
    the honest message; under content-digest dedup the two messages have
    different keys and both flood.
    """

    async def scenario():
        n = 10
        registry = KeyRegistry(n, run_seed=0)
        transport = SimTransport(n, base_latency_s=0.001, jitter_s=0.0, seed=0)
        delivered: dict[int, list] = {pid: [] for pid in range(n)}
        network = GossipNetwork(
            transport,
            regular_topology(n, 3, seed=0),
            on_deliver=lambda pid, m: delivered[pid].append(verification_digest(m)),
        )
        transport.start()
        network.start()
        honest = make_vote(registry, registry.secret_key(0), 0, None)
        junk = make_vote(registry, registry.secret_key(1), 0, None)
        # Transplant the honest id into the junk message's memo slot —
        # exactly what an adversary controls on objects it constructs.
        object.__setattr__(junk, "_message_id", honest.message_id)
        assert junk.message_id == honest.message_id
        network.nodes[1].publish(junk)
        await asyncio.sleep(0.05)  # let the junk flood finish first
        network.nodes[0].publish(honest)
        await asyncio.sleep(0.1)
        await network.stop()
        return delivered, honest

    delivered, honest = asyncio.run(scenario())
    honest_digest = verification_digest(honest)
    for pid in range(10):
        assert honest_digest in delivered[pid], f"node {pid} censored the honest message"


def test_dissemination_survives_sleeping_originator_during_surge():
    """§2.1 end to end: the originator publishes, goes to sleep
    immediately, and a latency surge is in force — the message is
    delayed, never lost, and still reaches every other node."""

    async def scenario():
        n = 10
        registry = KeyRegistry(n, run_seed=0)
        surge = SurgeWindow(start_s=0.0, end_s=0.25, factor=10.0)
        transport = SimTransport(n, base_latency_s=0.002, jitter_s=0.0, seed=0, surges=(surge,))
        delivered: dict[int, list] = {pid: [] for pid in range(n)}
        network = GossipNetwork(
            transport,
            regular_topology(n, 3, seed=0),
            on_deliver=lambda pid, m: delivered[pid].append(m.message_id),
        )
        transport.start()
        network.start()
        vote = make_vote(registry, registry.secret_key(0), 0, None)
        network.nodes[0].publish(vote)
        # The originator sleeps mid-flood, while every hop is surged.
        await network.nodes[0].stop()
        await asyncio.sleep(0.6)  # diameter · surged hop latency, with slack
        await network.stop()
        return delivered, vote

    delivered, vote = asyncio.run(scenario())
    for pid in range(10):
        assert vote.message_id in delivered[pid]


def test_seen_set_is_bounded_by_the_expiry_horizon():
    """Soak-lane memory: dedup entries are evicted once older than the
    horizon, and re-arrivals of evicted (stale) messages are dropped —
    counted, never re-flooded."""

    async def scenario():
        horizon = 3
        senders = 4
        rounds = 50
        registry = KeyRegistry(senders, run_seed=0)
        transport = SimTransport(1, base_latency_s=0.001, jitter_s=0.0, seed=0)
        transport.start()
        current = [0]
        node = GossipNode(
            0,
            transport,
            neighbors=(),
            on_deliver=lambda pid, m: None,
            current_round=lambda: current[0],
            seen_horizon_rounds=horizon,
        )
        votes = {}
        for r in range(rounds):
            current[0] = r
            for sender in range(senders):
                vote = make_vote(registry, registry.secret_key(sender), r, None)
                votes[(r, sender)] = vote
                node.publish(vote)
            # Live entries never exceed one horizon's worth of rounds.
            assert node.seen_count() <= (horizon + 1) * senders
        assert node.stats["delivered"] == rounds * senders

        # An evicted message re-arriving is stale: dropped and audited,
        # not re-flooded (which would loop forever on a live overlay).
        stale = votes[(0, 0)]
        node.publish(stale)
        assert node.stats["stale_dropped"] == 1
        assert node.stats["delivered"] == rounds * senders
        return True

    assert asyncio.run(scenario())
