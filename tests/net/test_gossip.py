"""Gossip overlay: flooding, deduplication, sender-sleep survival."""

import asyncio

from repro.crypto.signatures import KeyRegistry
from repro.net.gossip import GossipNetwork, regular_topology
from repro.net.transport import SimTransport
from repro.sleepy.messages import make_vote


def test_regular_topology_is_connected_and_regular():
    topology = regular_topology(12, degree=4, seed=1)
    assert set(topology) == set(range(12))
    for pid, neighbors in topology.items():
        assert len(neighbors) == 4
        assert pid not in neighbors
        for q in neighbors:
            assert pid in topology[q]  # undirected


def test_tiny_networks_fall_back_to_complete_graph():
    topology = regular_topology(3, degree=4)
    assert topology[0] == (1, 2)
    assert topology[2] == (0, 1)


def _flood_scenario(n: int, degree: int, publisher: int = 0):
    async def scenario():
        registry = KeyRegistry(n, run_seed=0)
        transport = SimTransport(n, base_latency_s=0.001, jitter_s=0.001, seed=0)
        delivered: dict[int, list] = {pid: [] for pid in range(n)}
        network = GossipNetwork(
            transport,
            regular_topology(n, degree, seed=0),
            on_deliver=lambda pid, m: delivered[pid].append(m.message_id),
        )
        transport.start()
        network.start()
        vote = make_vote(registry, registry.secret_key(publisher), 0, None)
        network.nodes[publisher].publish(vote)
        await asyncio.sleep(0.1)  # >> diameter · latency
        await network.stop()
        return delivered, vote

    return asyncio.run(scenario())


def test_published_message_floods_every_node():
    delivered, vote = _flood_scenario(n=12, degree=3)
    for pid in range(12):
        assert delivered[pid] == [vote.message_id]


def test_each_node_delivers_each_message_exactly_once():
    delivered, vote = _flood_scenario(n=8, degree=4)
    for messages in delivered.values():
        assert messages.count(vote.message_id) == 1


def test_dissemination_survives_publisher_silence():
    """Once published, the message spreads without further publisher help —
    the paper's 'messages are disseminated even if the sender sleeps'."""

    async def scenario():
        n = 10
        registry = KeyRegistry(n, run_seed=0)
        transport = SimTransport(n, base_latency_s=0.001, jitter_s=0.0, seed=0)
        delivered: dict[int, list] = {pid: [] for pid in range(n)}
        network = GossipNetwork(
            transport,
            regular_topology(n, 3, seed=0),
            on_deliver=lambda pid, m: delivered[pid].append(m.message_id),
        )
        transport.start()
        network.start()
        vote = make_vote(registry, registry.secret_key(0), 0, None)
        network.nodes[0].publish(vote)
        # Kill the publisher's pump immediately: its own forwards were
        # already sent; the rest of the overlay must finish the flood.
        await network.nodes[0].stop()
        await asyncio.sleep(0.1)
        await network.stop()
        return delivered, vote

    delivered, vote = asyncio.run(scenario())
    for pid in range(10):
        assert vote.message_id in delivered[pid]
