"""The adversarial proxy: exact audit counters, flush order, phase drive."""

import asyncio

from repro.attacks import AttackScript, drop, heal, partition, phase, surge
from repro.net.proxy_transport import ProxyTransport
from repro.runtime.metrics import MetricsHub


class FakeInner:
    """A transport stub that records sends and sits at time zero."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, src, dst, payload):
        self.sent.append((src, dst, payload))

    def now(self):
        return 0.0

    def close(self):
        self.closed = True


def _proxy(script, *, seed=0, round_s=0.02, base_latency_s=0.01, inner=None):
    return ProxyTransport(
        inner if inner is not None else FakeInner(),
        script.timeline(),
        seed=seed,
        round_s=round_s,
        base_latency_s=base_latency_s,
    )


SCRIPT = AttackScript(
    name="audit",
    phases=(
        phase(2),
        phase(2, partition((0, 1), (2, 3))),
        phase(2, heal(), drop(0, 1, 1.0)),
        phase(2, heal(), surge(5.0)),
    ),
)


def test_audit_counters_are_exact_per_phase():
    async def scenario():
        proxy = _proxy(SCRIPT)
        inner = proxy.inner

        # Phase 0: benign — everything forwards untouched.
        proxy.send(0, 2, "a")
        assert inner.sent == [(0, 2, "a")]

        # Phase 1: the partition holds cross-group frames, in-group pass.
        proxy.enter_phase(1)
        proxy.send(0, 1, "b")
        proxy.send(0, 2, "c")
        proxy.send(3, 1, "d")
        assert inner.sent == [(0, 2, "a"), (0, 1, "b")]
        assert proxy.held_count == 2

        # Phase 2: heal flushes held frames in send order; the p=1 drop
        # rule then really discards 0→1 frames.
        proxy.enter_phase(2)
        assert inner.sent[-2:] == [(0, 2, "c"), (3, 1, "d")]
        assert proxy.held_count == 0
        proxy.send(0, 1, "e")
        proxy.send(1, 0, "f")
        assert inner.sent[-1] == (1, 0, "f")

        # Phase 3: the surge forwards after (factor − 1) × base latency.
        proxy.enter_phase(3)
        proxy.send(2, 3, "g")
        assert (2, 3, "g") not in inner.sent
        await asyncio.sleep(0.08)
        assert inner.sent[-1] == (2, 3, "g")

        assert proxy.audit_totals() == {"partitioned": 2, "dropped": 1, "delayed": 1}
        assert proxy.audit[1] == {"partitioned": 2, "dropped": 0, "delayed": 0}
        assert proxy.audit[2] == {"partitioned": 0, "dropped": 1, "delayed": 0}
        assert proxy.audit[3] == {"partitioned": 0, "dropped": 0, "delayed": 1}

        proxy.cancel_timers()

    asyncio.run(scenario())


def test_phase_transitions_are_monotone_and_idempotent():
    proxy = _proxy(SCRIPT)
    proxy.enter_phase(2)
    proxy.enter_phase(1)  # stale control frame: ignored
    proxy.enter_phase(99)  # out of range: ignored
    proxy.send(0, 2, "x")  # phase 2 has no partition — forwards
    assert proxy.inner.sent == [(0, 2, "x")]
    assert proxy.audit_totals()["partitioned"] == 0


def test_drop_coins_are_seeded_per_link():
    script = AttackScript(name="lossy", phases=(phase(1), phase(1, drop(0, 1, 0.5))))

    def survivors(seed):
        proxy = _proxy(script, seed=seed)
        proxy.enter_phase(1)
        for i in range(40):
            proxy.send(0, 1, i)
        return [payload for (_, _, payload) in proxy.inner.sent]

    # Same seed → the identical coin sequence; a drop actually happened.
    assert survivors(7) == survivors(7)
    assert 0 < len(survivors(7)) < 40
    assert survivors(7) != survivors(8)


def test_schedule_phases_self_drives_from_the_loop_clock():
    async def scenario():
        proxy = _proxy(SCRIPT, round_s=0.01)
        proxy.schedule_phases()
        proxy.send(0, 2, "early")
        await asyncio.sleep(0.035)  # past round 2: the partition is up
        proxy.send(0, 2, "blocked")
        assert proxy.held_count == 1
        await asyncio.sleep(0.03)  # past round 4: healed, frame flushed
        assert proxy.held_count == 0
        assert proxy.inner.sent[-1] == (0, 2, "blocked")
        proxy.cancel_timers()

    asyncio.run(scenario())


def test_metrics_export_and_delegation():
    proxy = _proxy(SCRIPT)
    hub = MetricsHub()
    proxy.enter_phase(1)
    proxy.send(0, 2, "x")
    proxy.export_metrics(hub)
    gauges = hub.snapshot()["gauges"]
    assert gauges["attack_partitioned_frames"] == 1
    assert gauges["attack_held_frames"] == 1
    assert gauges["attack_phase"] == 1
    # Everything but send is the inner transport's business.
    proxy.close()
    assert proxy.inner.closed


def test_drop_wildcards_match_any_link():
    script = AttackScript(name="wild", phases=(phase(1), phase(1, drop(None, None, 1.0))))
    proxy = _proxy(script)
    proxy.enter_phase(1)
    proxy.send(0, 1, "a")
    proxy.send(3, 2, "b")
    assert proxy.inner.sent == []
    assert proxy.audit_totals()["dropped"] == 2


def test_send_many_decomposes_and_never_uses_the_inner_bulk_path():
    class BulkInner(FakeInner):
        def send_many(self, src, dsts, payload):
            raise AssertionError("fan-outs must not bypass per-frame interception")

    proxy = _proxy(SCRIPT, inner=BulkInner())
    proxy.send_many(0, (1, 2, 3), "x")
    assert proxy.inner.sent == [(0, 1, "x"), (0, 2, "x"), (0, 3, "x")]
    # Under a wildcard p=1 drop every frame of the fan-out is discarded.
    lossy = AttackScript(name="all", phases=(phase(1), phase(1, drop(None, None, 1.0))))
    proxy = _proxy(lossy, inner=BulkInner())
    proxy.enter_phase(1)
    proxy.send_many(0, (1, 2, 3), "y")
    assert proxy.inner.sent == []
    assert proxy.audit_totals()["dropped"] == 3


def test_fanout_drop_coins_are_tossed_per_frame_on_a_batched_inner():
    from repro.net.transport import SimTransport

    script = AttackScript(name="lossy", phases=(phase(1), phase(1, drop(None, None, 0.5))))

    async def scenario():
        inner = SimTransport(8, base_latency_s=0.0, jitter_s=0.0, seed=0, slot_s=0.001)
        inner.start()
        proxy = _proxy(script, inner=inner)
        proxy.enter_phase(1)
        proxy.send_many(0, range(1, 8), "x")
        dropped = proxy.audit_totals()["dropped"]
        # A batch-level coin would kill all seven frames or none; the
        # per-link streams split the fan-out.
        assert 0 < dropped < 7
        assert inner.sent_count == 7 - dropped
        await asyncio.sleep(0.01)
        delivered = sum(1 for pid in range(1, 8) if inner.recv_nowait(pid) is not None)
        assert delivered == 7 - dropped

    asyncio.run(scenario())


def test_fanout_surges_delay_every_frame_through_the_wheel():
    from repro.net.transport import SimTransport

    script = AttackScript(name="slow", phases=(phase(1), phase(1, surge(5.0))))

    async def scenario():
        inner = SimTransport(4, base_latency_s=0.001, jitter_s=0.0, seed=0, slot_s=0.001)
        inner.start()
        proxy = _proxy(script, base_latency_s=0.001, inner=inner)
        proxy.enter_phase(1)
        proxy.send_many(0, (1, 2, 3), "x")
        # One delayed count per frame, not one per fan-out.
        assert proxy.audit_totals()["delayed"] == 3
        assert inner.sent_count == 0
        await asyncio.sleep(0.05)
        for pid in (1, 2, 3):
            assert inner.recv_nowait(pid) == (0, "x")

    asyncio.run(scenario())
