"""Asyncio transport: delivery, latency, surge windows."""

import asyncio

import pytest

from repro.net.transport import LinkLatencyModel, SimTransport, SurgeWindow


def run(coro):
    return asyncio.run(coro)


def test_messages_arrive_in_order_per_link():
    async def scenario():
        transport = SimTransport(2, base_latency_s=0.001, jitter_s=0.0, seed=0)
        transport.start()
        for i in range(5):
            transport.send(0, 1, i)
        received = [await transport.recv(1) for _ in range(5)]
        return received

    received = run(scenario())
    assert received == [(0, i) for i in range(5)]


def test_send_before_start_rejected():
    transport = SimTransport(2)
    with pytest.raises(RuntimeError, match="not started"):
        transport.send(0, 1, "x")


def test_latency_respects_surge_windows():
    surge = SurgeWindow(start_s=1.0, end_s=2.0, factor=10.0)
    transport = SimTransport(2, base_latency_s=0.010, jitter_s=0.0, seed=0, surges=(surge,))
    assert transport.latency(0, 1, 0.5) == pytest.approx(0.010)
    assert transport.latency(0, 1, 1.5) == pytest.approx(0.100)
    assert transport.latency(0, 1, 2.5) == pytest.approx(0.010)


def test_jitter_is_seeded():
    a = SimTransport(2, base_latency_s=0.001, jitter_s=0.005, seed=3)
    b = SimTransport(2, base_latency_s=0.001, jitter_s=0.005, seed=3)
    assert [a.latency(0, 1, 0) for _ in range(5)] == [b.latency(0, 1, 0) for _ in range(5)]


def test_latency_streams_are_per_link_and_order_independent():
    """Regression: a shared RNG made latencies depend on global send order.

    The k-th sample on a link must be identical no matter how sends on
    *other* links interleave with it — otherwise asyncio scheduler
    jitter changes the sampled latencies between runs of one deployment.
    """
    links = [(0, 1), (1, 0), (0, 2), (2, 1)]
    a = LinkLatencyModel(0.001, 0.005, seed=7)
    b = LinkLatencyModel(0.001, 0.005, seed=7)

    interleaved: dict[tuple[int, int], list[float]] = {link: [] for link in links}
    for k in range(6):  # round-robin across links
        for link in links:
            interleaved[link].append(a.latency(*link, at_s=0.0))

    grouped: dict[tuple[int, int], list[float]] = {link: [] for link in links}
    for link in reversed(links):  # one link at a time, opposite order
        for k in range(6):
            grouped[link].append(b.latency(*link, at_s=0.0))

    assert interleaved == grouped
    # Distinct links (including the two directions of a pair) draw
    # distinct streams rather than aliasing one sequence.
    assert interleaved[(0, 1)] != interleaved[(1, 0)]


def test_queue_depths_reports_arrived_unread_messages():
    async def scenario():
        transport = SimTransport(2, base_latency_s=0.001, jitter_s=0.0, seed=0)
        transport.start()
        transport.send(0, 1, "x")
        transport.send(0, 1, "y")
        await asyncio.sleep(0.01)
        depths = dict(transport.queue_depths())
        await transport.recv(1)
        depths_after = dict(transport.queue_depths())
        return depths, depths_after

    depths, depths_after = run(scenario())
    assert depths[1] == 2
    assert depths_after[1] == 1


def test_surged_message_is_delayed_not_dropped():
    async def scenario():
        surge = SurgeWindow(start_s=0.0, end_s=0.05, factor=20.0)
        transport = SimTransport(2, base_latency_s=0.005, jitter_s=0.0, seed=0, surges=(surge,))
        transport.start()
        transport.send(0, 1, "slow")  # 0.1 s latency under the surge
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(transport.recv(1), timeout=0.04)
        src, payload = await asyncio.wait_for(transport.recv(1), timeout=0.2)
        return payload

    assert run(scenario()) == "slow"


def test_counts_sent_messages():
    async def scenario():
        transport = SimTransport(3)
        transport.start()
        transport.send(0, 1, "a")
        transport.send(0, 2, "b")
        return transport.sent_count

    assert run(scenario()) == 2


def test_validation():
    with pytest.raises(ValueError):
        SimTransport(0)
    with pytest.raises(ValueError):
        SimTransport(2, base_latency_s=-1.0)
