"""Asyncio transport: delivery, latency, surge windows."""

import asyncio

import pytest

from repro.net.transport import SimTransport, SurgeWindow


def run(coro):
    return asyncio.run(coro)


def test_messages_arrive_in_order_per_link():
    async def scenario():
        transport = SimTransport(2, base_latency_s=0.001, jitter_s=0.0, seed=0)
        transport.start()
        for i in range(5):
            transport.send(0, 1, i)
        received = [await transport.recv(1) for _ in range(5)]
        return received

    received = run(scenario())
    assert received == [(0, i) for i in range(5)]


def test_send_before_start_rejected():
    transport = SimTransport(2)
    with pytest.raises(RuntimeError, match="not started"):
        transport.send(0, 1, "x")


def test_latency_respects_surge_windows():
    surge = SurgeWindow(start_s=1.0, end_s=2.0, factor=10.0)
    transport = SimTransport(2, base_latency_s=0.010, jitter_s=0.0, seed=0, surges=(surge,))
    assert transport.latency(0.5) == pytest.approx(0.010)
    assert transport.latency(1.5) == pytest.approx(0.100)
    assert transport.latency(2.5) == pytest.approx(0.010)


def test_jitter_is_seeded():
    a = SimTransport(2, base_latency_s=0.001, jitter_s=0.005, seed=3)
    b = SimTransport(2, base_latency_s=0.001, jitter_s=0.005, seed=3)
    assert [a.latency(0) for _ in range(5)] == [b.latency(0) for _ in range(5)]


def test_surged_message_is_delayed_not_dropped():
    async def scenario():
        surge = SurgeWindow(start_s=0.0, end_s=0.05, factor=20.0)
        transport = SimTransport(2, base_latency_s=0.005, jitter_s=0.0, seed=0, surges=(surge,))
        transport.start()
        transport.send(0, 1, "slow")  # 0.1 s latency under the surge
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(transport.recv(1), timeout=0.04)
        src, payload = await asyncio.wait_for(transport.recv(1), timeout=0.2)
        return payload

    assert run(scenario()) == "slow"


def test_counts_sent_messages():
    async def scenario():
        transport = SimTransport(3)
        transport.start()
        transport.send(0, 1, "a")
        transport.send(0, 2, "b")
        return transport.sent_count

    assert run(scenario()) == 2


def test_validation():
    with pytest.raises(ValueError):
        SimTransport(0)
    with pytest.raises(ValueError):
        SimTransport(2, base_latency_s=-1.0)
