"""Asyncio transport: delivery, latency, surge windows."""

import asyncio

import pytest

from repro.net.transport import LinkLatencyModel, SimTransport, SurgeWindow


def run(coro):
    return asyncio.run(coro)


def test_messages_arrive_in_order_per_link():
    async def scenario():
        transport = SimTransport(2, base_latency_s=0.001, jitter_s=0.0, seed=0)
        transport.start()
        for i in range(5):
            transport.send(0, 1, i)
        received = [await transport.recv(1) for _ in range(5)]
        return received

    received = run(scenario())
    assert received == [(0, i) for i in range(5)]


def test_send_before_start_rejected():
    transport = SimTransport(2)
    with pytest.raises(RuntimeError, match="not started"):
        transport.send(0, 1, "x")


def test_latency_respects_surge_windows():
    surge = SurgeWindow(start_s=1.0, end_s=2.0, factor=10.0)
    transport = SimTransport(2, base_latency_s=0.010, jitter_s=0.0, seed=0, surges=(surge,))
    assert transport.latency(0, 1, 0.5) == pytest.approx(0.010)
    assert transport.latency(0, 1, 1.5) == pytest.approx(0.100)
    assert transport.latency(0, 1, 2.5) == pytest.approx(0.010)


def test_jitter_is_seeded():
    a = SimTransport(2, base_latency_s=0.001, jitter_s=0.005, seed=3)
    b = SimTransport(2, base_latency_s=0.001, jitter_s=0.005, seed=3)
    assert [a.latency(0, 1, 0) for _ in range(5)] == [b.latency(0, 1, 0) for _ in range(5)]


def test_latency_streams_are_per_link_and_order_independent():
    """Regression: a shared RNG made latencies depend on global send order.

    The k-th sample on a link must be identical no matter how sends on
    *other* links interleave with it — otherwise asyncio scheduler
    jitter changes the sampled latencies between runs of one deployment.
    """
    links = [(0, 1), (1, 0), (0, 2), (2, 1)]
    a = LinkLatencyModel(0.001, 0.005, seed=7)
    b = LinkLatencyModel(0.001, 0.005, seed=7)

    interleaved: dict[tuple[int, int], list[float]] = {link: [] for link in links}
    for k in range(6):  # round-robin across links
        for link in links:
            interleaved[link].append(a.latency(*link, at_s=0.0))

    grouped: dict[tuple[int, int], list[float]] = {link: [] for link in links}
    for link in reversed(links):  # one link at a time, opposite order
        for k in range(6):
            grouped[link].append(b.latency(*link, at_s=0.0))

    assert interleaved == grouped
    # Distinct links (including the two directions of a pair) draw
    # distinct streams rather than aliasing one sequence.
    assert interleaved[(0, 1)] != interleaved[(1, 0)]


def test_queue_depths_reports_arrived_unread_messages():
    async def scenario():
        transport = SimTransport(2, base_latency_s=0.001, jitter_s=0.0, seed=0)
        transport.start()
        transport.send(0, 1, "x")
        transport.send(0, 1, "y")
        await asyncio.sleep(0.01)
        depths = dict(transport.queue_depths())
        await transport.recv(1)
        depths_after = dict(transport.queue_depths())
        return depths, depths_after

    depths, depths_after = run(scenario())
    assert depths[1] == 2
    assert depths_after[1] == 1


def test_surged_message_is_delayed_not_dropped():
    async def scenario():
        surge = SurgeWindow(start_s=0.0, end_s=0.05, factor=20.0)
        transport = SimTransport(2, base_latency_s=0.005, jitter_s=0.0, seed=0, surges=(surge,))
        transport.start()
        transport.send(0, 1, "slow")  # 0.1 s latency under the surge
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(transport.recv(1), timeout=0.04)
        src, payload = await asyncio.wait_for(transport.recv(1), timeout=0.2)
        return payload

    assert run(scenario()) == "slow"


def test_counts_sent_messages():
    async def scenario():
        transport = SimTransport(3)
        transport.start()
        transport.send(0, 1, "a")
        transport.send(0, 2, "b")
        return transport.sent_count

    assert run(scenario()) == 2


def test_validation():
    with pytest.raises(ValueError):
        SimTransport(0)
    with pytest.raises(ValueError):
        SimTransport(2, base_latency_s=-1.0)


# ----------------------------------------------------------------------
# FrameQueue
# ----------------------------------------------------------------------
def test_frame_queue_orders_and_wakes_single_reader():
    from repro.net.transport import FrameQueue

    async def scenario():
        queue = FrameQueue()
        assert queue.get_nowait() is None and queue.qsize() == 0
        queue.put_nowait("a")
        queue.put_nowait("b")
        assert queue.qsize() == 2
        assert await queue.get() == "a"
        assert queue.get_nowait() == "b"
        # A parked reader is woken by the next put.
        getter = asyncio.ensure_future(queue.get())
        await asyncio.sleep(0)
        queue.put_nowait("c")
        assert await asyncio.wait_for(getter, timeout=1) == "c"

    run(scenario())


def test_frame_queue_rejects_concurrent_readers():
    from repro.net.transport import FrameQueue

    async def scenario():
        queue = FrameQueue()
        first = asyncio.ensure_future(queue.get())
        await asyncio.sleep(0)
        with pytest.raises(RuntimeError, match="single reader"):
            await queue.get()
        first.cancel()

    run(scenario())


# ----------------------------------------------------------------------
# DeliveryWheel
# ----------------------------------------------------------------------
def test_wheel_coalesces_deliveries_into_slot_timers():
    from repro.net.transport import DeliveryWheel

    async def scenario():
        wheel = DeliveryWheel(0.005)
        fired = []
        slot = wheel.slot_for(0.001)
        for i in range(25):
            wheel.schedule(slot, fired.append, i)
        assert wheel.timers_created == 1
        assert wheel.scheduled_count == 25
        assert wheel.pending == 25
        await asyncio.sleep(0.02)
        # One loop timer ran every parked delivery, in schedule order.
        assert fired == list(range(25))
        assert wheel.pending == 0

    run(scenario())


def test_wheel_flush_runs_pending_slots_earliest_first():
    from repro.net.transport import DeliveryWheel

    async def scenario():
        wheel = DeliveryWheel(1.0)  # slots far in the future: nothing fires
        fired = []
        late, early = wheel.slot_for(5.0), wheel.slot_for(2.0)
        wheel.schedule(late, fired.append, "late")
        wheel.schedule(early, fired.append, "early")
        wheel.flush()
        assert fired == ["early", "late"]
        assert wheel.pending == 0

    run(scenario())


def test_wheel_cancel_drops_pending_deliveries():
    from repro.net.transport import DeliveryWheel

    async def scenario():
        wheel = DeliveryWheel(0.001)
        fired = []
        wheel.schedule(wheel.slot_for(0.001), fired.append, "x")
        wheel.cancel()
        await asyncio.sleep(0.01)
        assert fired == [] and wheel.pending == 0

    run(scenario())


# ----------------------------------------------------------------------
# The slot-wheel delivery path and fan-out surface
# ----------------------------------------------------------------------
def test_sim_transport_delivers_through_the_wheel():
    async def scenario():
        transport = SimTransport(3, base_latency_s=0.001, jitter_s=0.0, seed=0, slot_s=0.002)
        transport.start()
        for i in range(10):
            transport.send(0, 1, i)
            transport.send(0, 2, i)
        received_1 = [await asyncio.wait_for(transport.recv(1), 2) for _ in range(10)]
        received_2 = [await asyncio.wait_for(transport.recv(2), 2) for _ in range(10)]
        assert received_1 == [(0, i) for i in range(10)]
        assert received_2 == [(0, i) for i in range(10)]
        # 20 deliveries shared O(slots) timers.
        assert transport.wheel.scheduled_count == 20
        assert transport.wheel.timers_created <= 3

    run(scenario())


def test_send_many_matches_per_send_semantics():
    async def scenario():
        # Same seed and jitter: a fan-out must consume the same
        # per-link latency streams as the equivalent send loop.
        loop_sent = SimTransport(4, base_latency_s=0.001, jitter_s=0.002, seed=7)
        fanout = SimTransport(4, base_latency_s=0.001, jitter_s=0.002, seed=7)
        loop_sent.start()
        fanout.start()
        for dst in (1, 2, 3):
            loop_sent.send(0, dst, "x")
        fanout.send_many(0, (1, 2, 3), "x")
        assert fanout.sent_count == loop_sent.sent_count == 3
        for dst in (1, 2, 3):
            assert await asyncio.wait_for(loop_sent.recv(dst), 2) == (0, "x")
            assert await asyncio.wait_for(fanout.recv(dst), 2) == (0, "x")
        # Streams advanced identically: the next draw per link matches.
        for dst in (1, 2, 3):
            assert loop_sent.latency(0, dst, 0.0) == fanout.latency(0, dst, 0.0)

    run(scenario())


def test_recv_nowait_returns_arrived_frames_without_blocking():
    async def scenario():
        transport = SimTransport(2, base_latency_s=0.0, jitter_s=0.0, seed=0, slot_s=0.001)
        transport.start()
        assert transport.recv_nowait(1) is None
        transport.send(0, 1, "a")
        transport.send(0, 1, "b")
        await transport.recv(1)  # waits for the slot to fire
        assert transport.recv_nowait(1) == (0, "b")
        assert transport.recv_nowait(1) is None

    run(scenario())


def test_zero_jitter_latency_skips_the_stream_but_matches_it():
    # The fast path must return exactly what the stream would have.
    fast = LinkLatencyModel(0.003, 0.0, seed=1)
    slow = LinkLatencyModel(0.003, 1e-12, seed=1)
    for _ in range(3):
        assert fast.latency(0, 1, 0.0) == 0.003
        assert abs(slow.latency(0, 1, 0.0) - 0.003) < 1e-9
    # Surge windows still apply on the fast path.
    surged = LinkLatencyModel(0.003, 0.0, seed=1, surges=(SurgeWindow(0.0, 1.0, 10.0),))
    assert surged.latency(0, 1, 0.5) == 0.03
