"""Scenario constructors: shapes and end-to-end behaviour."""

from repro.analysis.checkers import check_safety
from repro.harness import run_tob
from repro.workloads.scenarios import (
    blackout_scenario,
    churn_scenario,
    ethereum_outage_scenario,
    split_vote_attack_scenario,
)


def test_split_vote_scenario_configuration():
    config = split_vote_attack_scenario("mmr", eta=0, pi=2, n=20, target_round=10)
    (period,) = config.conditions.periods
    assert period.ra == 8 and period.pi == 2
    # The logical realisation the simulator runs under matches.
    network = config.resolved_network()
    assert network.ra == 8 and network.pi == 2
    assert config.adversary.target_round == 10
    assert config.adversary.byzantine(0) == frozenset(range(16, 20))
    assert config.meta["scenario"] == "split-vote-attack"


def test_split_vote_scenario_behaviour_pair():
    assert not check_safety(run_tob(split_vote_attack_scenario("mmr", eta=0))).ok
    assert check_safety(run_tob(split_vote_attack_scenario("resilient", eta=2))).ok


def test_blackout_scenario_resilient_decides_safely_where_mmr_stalls():
    ra, pi = 9, 2
    window = range(ra + 1, ra + pi + 1)
    resilient = run_tob(blackout_scenario("resilient", eta=3, pi=pi))
    assert check_safety(resilient).ok
    # The expiration mechanism keeps deciding through the blackout from
    # retained (unexpired) votes — and those decisions are safe.
    assert [d for d in resilient.decisions if d.round in window]
    # The original protocol has an empty tally during the blackout: stall.
    mmr = run_tob(blackout_scenario("mmr", eta=0, pi=pi))
    assert check_safety(mmr).ok
    assert not [d for d in mmr.decisions if d.round in window]


def test_ethereum_outage_scenario_keeps_growing():
    config = ethereum_outage_scenario(n=20, start=8, duration=10, rounds=30)
    trace = run_tob(config)
    assert check_safety(trace).ok
    during = [d for d in trace.decisions if 10 <= d.round < 18]
    assert during, "the chain must keep growing through the outage"


def test_churn_scenario_with_byzantine_carveout():
    config = churn_scenario("resilient", eta=4, gamma=0.1, n=20, byzantine=2, rounds=30)
    trace = run_tob(config)
    assert check_safety(trace).ok
    assert all(rec.byzantine == frozenset({18, 19}) for rec in trace.rounds)
    # Byzantine processes never sleep even though the walk may put them to bed.
    assert all({18, 19} <= rec.awake for rec in trace.rounds)
