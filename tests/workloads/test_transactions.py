"""Transaction streams: reproducibility and validity."""

import pytest

from repro.chain.transactions import is_valid_transaction
from repro.workloads.transactions import burst_stream, constant_rate_stream


def test_constant_rate_counts():
    stream = constant_rate_stream(rate_per_round=3, rounds=5, seed=1)
    assert set(stream) == set(range(5))
    assert all(len(txs) == 3 for txs in stream.values())


def test_all_generated_transactions_valid():
    stream = constant_rate_stream(rate_per_round=2, rounds=4, seed=2)
    for txs in stream.values():
        assert all(is_valid_transaction(tx) for tx in txs)


def test_streams_are_reproducible_and_seed_sensitive():
    a = constant_rate_stream(2, 3, seed=7)
    b = constant_rate_stream(2, 3, seed=7)
    c = constant_rate_stream(2, 3, seed=8)
    assert a == b
    assert a != c


def test_nonces_unique_across_stream():
    stream = constant_rate_stream(4, 6, seed=0)
    ids = [tx.tx_id for txs in stream.values() for tx in txs]
    assert len(ids) == len(set(ids))


def test_zero_rate_is_empty():
    assert constant_rate_stream(0, 5) == {}
    with pytest.raises(ValueError):
        constant_rate_stream(-1, 5)


def test_burst_stream():
    stream = burst_stream(burst_round=7, burst_size=10, seed=3)
    assert list(stream) == [7]
    assert len(stream[7]) == 10
    assert all(is_valid_transaction(tx) for tx in stream[7])


def test_submission_rate_workload_is_lazy_deterministic_and_valid():
    from repro.workloads.transactions import SubmissionRateWorkload

    workload = SubmissionRateWorkload(rate_per_round=3, seed=5)
    first = workload.get(7)
    again = workload.get(7)
    assert first == again  # pure function of (seed, round)
    assert len(first) == 3
    assert all(is_valid_transaction(tx) for tx in first)
    assert workload.get(8) != first
    assert SubmissionRateWorkload(rate_per_round=3, seed=6).get(7) != first
    assert workload.get(-1) == ()
    assert SubmissionRateWorkload(rate_per_round=0).get(7) == ()


def test_submission_rate_workload_nonces_partition_by_round():
    from repro.workloads.transactions import SubmissionRateWorkload

    workload = SubmissionRateWorkload(rate_per_round=4, seed=0)
    ids = [tx.tx_id for r in range(6) for tx in workload.get(r)]
    assert len(ids) == len(set(ids))


def test_submission_rate_workload_pickles_and_digests_stably():
    import pickle

    from repro.engine.spec import stable_digest
    from repro.workloads.transactions import SubmissionRateWorkload

    workload = SubmissionRateWorkload(rate_per_round=2, seed=3)
    clone = pickle.loads(pickle.dumps(workload))
    assert clone == workload
    assert clone.get(4) == workload.get(4)
    # Generating arrivals must not perturb the canonical digest (no
    # memoisation state): workers and the sweep journal rely on it.
    digest_before = stable_digest(workload)
    workload.get(0)
    assert stable_digest(workload) == digest_before
    assert stable_digest(clone) == digest_before
