"""Participation workloads produce schedules with the promised shapes."""

from fractions import Fraction

import pytest

from repro.analysis.assumptions import check_churn
from repro.harness import TOBRunConfig, run_tob
from repro.workloads.participation import (
    RampSchedule,
    churn_walk,
    diurnal,
    ethereum_may_2023,
    outage,
    stable,
)


def test_stable_is_full_participation():
    schedule = stable(7)
    assert schedule.awake(0) == frozenset(range(7))
    assert schedule.awake(99) == frozenset(range(7))


def test_churn_walk_satisfies_equation1_on_executed_trace():
    """The generator is conservative: Eq. 1 must validate on a real run."""
    eta, gamma = 4, 0.25
    trace = run_tob(
        TOBRunConfig(
            n=30,
            rounds=40,
            protocol="resilient",
            eta=eta,
            schedule=churn_walk(30, eta, gamma, seed=5),
        )
    )
    report = check_churn(trace, eta=eta, gamma=Fraction(1, 4))
    assert report.ok, report.failures[:3]


def test_churn_walk_actually_churns():
    schedule = churn_walk(30, eta=4, gamma=0.3, seed=1)
    sets = {schedule.awake(r) for r in range(25)}
    assert len(sets) > 1


def test_churn_walk_validation():
    with pytest.raises(ValueError, match="η"):
        churn_walk(10, eta=-1, gamma=0.1)


def test_outage_shape():
    schedule = outage(10, fraction=0.6, start=5, duration=4)
    assert len(schedule.awake(4)) == 10
    assert len(schedule.awake(5)) == 4
    assert len(schedule.awake(9)) == 10


def test_ethereum_outage_drops_sixty_percent():
    schedule = ethereum_may_2023(100, start=10, duration=20)
    assert len(schedule.awake(9)) == 100
    assert len(schedule.awake(10)) == 40
    assert len(schedule.awake(30)) == 100


def test_diurnal_smoke():
    schedule = diurnal(20, period=12, min_fraction=0.4)
    sizes = {len(schedule.awake(r)) for r in range(12)}
    assert min(sizes) >= 8 and max(sizes) == 20


def test_ramp_schedule_declines_linearly_to_floor():
    schedule = RampSchedule(10, floor_fraction=0.3, start=4, length=7)
    sizes = [len(schedule.awake(r)) for r in range(16)]
    assert sizes[:4] == [10] * 4
    assert sizes[4] == 10  # progress 0 at the start round
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert sizes[11] == 3  # reached the floor
    assert sizes[15] == 3  # stays there


def test_ramp_validation():
    with pytest.raises(ValueError):
        RampSchedule(10, floor_fraction=0.0, start=0, length=5)
    with pytest.raises(ValueError):
        RampSchedule(10, floor_fraction=0.5, start=0, length=0)
