"""The original MMR protocol: behaviour under faults and participation swings."""

from repro.analysis.checkers import check_safety
from repro.analysis.metrics import chain_growth_rate, decision_gaps
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import CrashAdversary, EquivocatingVoteAdversary, SplitVoteAttack
from repro.sleepy.network import WindowedAsynchrony
from repro.sleepy.schedule import SpikeSchedule, TableSchedule


def test_steady_state_decides_every_view():
    trace = run_tob(TOBRunConfig(n=6, rounds=30, protocol="mmr"))
    assert check_safety(trace).ok
    gaps = decision_gaps(trace)
    assert gaps and all(gap == 2 for gap in gaps)  # one decision per view


def test_tolerates_crash_faults_below_threshold():
    # 3 of 10 silent: |B_r| = 3 < 10/3 fails... 3 < 3.33 holds.
    trace = run_tob(
        TOBRunConfig(n=10, rounds=30, protocol="mmr", adversary=CrashAdversary([7, 8, 9]))
    )
    assert check_safety(trace).ok
    assert chain_growth_rate(trace) > 0.3


def test_tolerates_equivocation_below_threshold():
    trace = run_tob(
        TOBRunConfig(n=10, rounds=30, protocol="mmr", adversary=EquivocatingVoteAdversary([8, 9]))
    )
    assert check_safety(trace).ok
    assert chain_growth_rate(trace) > 0.3


def test_survives_participation_spike_from_full_to_40_percent():
    # The Ethereum-outage shape: 60% vanish for a while, then return.
    trace = run_tob(
        TOBRunConfig(
            n=10,
            rounds=40,
            protocol="mmr",
            schedule=SpikeSchedule(10, drop_fraction=0.6, start=10, duration=10),
        )
    )
    assert check_safety(trace).ok
    # Chain keeps growing during the outage (dynamic availability).
    during = [d for d in trace.decisions if 12 <= d.round < 20]
    assert during


def test_survives_extreme_drop_to_single_process():
    schedule = TableSchedule(10, {r: {0} for r in range(10, 20)}, default=set(range(10)))
    trace = run_tob(TOBRunConfig(n=10, rounds=30, protocol="mmr", schedule=schedule))
    assert check_safety(trace).ok
    assert any(d.round >= 21 for d in trace.decisions)  # recovers after return


def test_asynchrony_without_adversary_is_harmless_for_safety():
    # Passive adversary: async rounds deliver everything (default deliver).
    trace = run_tob(
        TOBRunConfig(
            n=6, rounds=20, protocol="mmr", network=WindowedAsynchrony(ra=7, pi=3)
        )
    )
    assert check_safety(trace).ok


def test_split_vote_attack_breaks_safety_in_one_async_round():
    """The §1 attack: a single adversarial decision round forks the chain."""
    n = 12
    byz = [10, 11]
    target = 8
    trace = run_tob(
        TOBRunConfig(
            n=n,
            rounds=16,
            protocol="mmr",
            adversary=SplitVoteAttack(byz, target_round=target),
            network=WindowedAsynchrony(ra=target - 1, pi=1),
        )
    )
    report = check_safety(trace)
    assert not report.ok, "original MMR must lose safety under the split-vote attack"
    # The conflicting decisions happen right after the attacked round.
    assert any(
        c.first.round == target + 1 or c.second.round == target + 1 for c in report.conflicts
    )


def test_split_vote_attack_fools_both_groups():
    n = 12
    target = 8
    trace = run_tob(
        TOBRunConfig(
            n=n,
            rounds=16,
            protocol="mmr",
            adversary=SplitVoteAttack([10, 11], target_round=target),
            network=WindowedAsynchrony(ra=target - 1, pi=1),
        )
    )
    victims = {d.pid for d in trace.decisions if d.round == target + 1}
    # Every honest process decided one of the two forged forks.
    assert victims == set(range(10))
