"""GA tally: exact thresholds, prefix counting, equivocation discard."""

from fractions import Fraction

import pytest

from repro.chain.block import GENESIS_TIP, genesis_block
from repro.protocols.graded_agreement import (
    select_current_round_votes,
    tally_votes,
)

from tests.conftest import extend


def test_empty_tally():
    from repro.chain.tree import BlockTree

    output = tally_votes(BlockTree([genesis_block()]), {})
    assert output.m == 0
    assert output.grade1 == () and output.grade0 == ()


def test_unanimous_votes_grade_one(tree, genesis):
    chain = extend(tree, genesis.block_id, 2)
    tip = chain[-1].block_id
    votes = {pid: tip for pid in range(9)}
    output = tally_votes(tree, votes)
    assert output.m == 9
    # The whole prefix chain gets grade 1, deepest last.
    assert output.grade1 == (GENESIS_TIP, genesis.block_id, chain[0].block_id, tip)
    assert output.grade0 == ()


def test_exact_two_thirds_boundary(tree, genesis):
    """> 2m/3 is strict: 6 of 9 is not enough, 7 of 9 is."""
    chain = extend(tree, genesis.block_id, 1)
    tip = chain[0].block_id
    votes = {pid: (tip if pid < 6 else GENESIS_TIP) for pid in range(9)}
    output = tally_votes(tree, votes)
    assert tip not in output.grade1  # 6 = 2·9/3 exactly: not strictly more
    assert tip in output.grade0
    votes[6] = tip  # now 7 > 6
    output = tally_votes(tree, votes)
    assert tip in output.grade1


def test_exact_one_third_boundary(tree, genesis):
    """> m/3 is strict: 3 of 9 is not output at all, 4 of 9 gets grade 0."""
    chain = extend(tree, genesis.block_id, 1)
    tip = chain[0].block_id
    votes = {pid: (tip if pid < 3 else GENESIS_TIP) for pid in range(9)}
    output = tally_votes(tree, votes)
    assert tip not in output.grade0 and tip not in output.grade1
    votes[3] = tip
    output = tally_votes(tree, votes)
    assert tip in output.grade0


def test_votes_count_for_prefixes(tree, genesis):
    left = extend(tree, genesis.block_id, 2, salt=1)
    right = extend(tree, genesis.block_id, 2, salt=2)
    # 5 votes on the left branch tip, 4 on the right: both extend genesis.
    votes = {pid: left[-1].block_id for pid in range(5)}
    votes |= {pid: right[-1].block_id for pid in range(5, 9)}
    output = tally_votes(tree, votes)
    assert genesis.block_id in output.grade1  # 9/9 votes via prefix counting
    assert left[-1].block_id in output.grade0  # 5 of 9: > m/3 but ≤ 2m/3
    assert right[-1].block_id in output.grade0  # 4 of 9
    assert left[-1].block_id not in output.grade1


def test_empty_log_always_grade_one_when_heard(tree, genesis):
    votes = {0: genesis.block_id}
    output = tally_votes(tree, votes)
    assert GENESIS_TIP in output.grade1


def test_parametric_beta_quarter(tree, genesis):
    """β = 1/4: grade 1 needs > 3m/4 (9 of 12 fails, 10 of 12 passes)."""
    chain = extend(tree, genesis.block_id, 1)
    tip = chain[0].block_id
    beta = Fraction(1, 4)
    votes = {pid: (tip if pid < 9 else GENESIS_TIP) for pid in range(12)}
    output = tally_votes(tree, votes, beta=beta)
    assert tip not in output.grade1 and tip in output.grade0
    votes[9] = tip
    output = tally_votes(tree, votes, beta=beta)
    assert tip in output.grade1
    # And grade 0 needs > m/4: exactly 3 of 12 is not enough.
    votes = {pid: (tip if pid < 3 else GENESIS_TIP) for pid in range(12)}
    output = tally_votes(tree, votes, beta=beta)
    assert tip not in output.grade0


def test_beta_validation(tree):
    with pytest.raises(ValueError, match="β"):
        tally_votes(tree, {0: GENESIS_TIP}, beta=Fraction(2, 3))
    with pytest.raises(ValueError, match="β"):
        tally_votes(tree, {0: GENESIS_TIP}, beta=Fraction(0))


def test_conflicting_grade1_impossible_structurally(tree, genesis):
    """Two conflicting logs can never both exceed 2m/3 with one vote each."""
    left = extend(tree, genesis.block_id, 1, salt=1)
    right = extend(tree, genesis.block_id, 1, salt=2)
    for split in range(10):
        votes = {pid: (left[0].block_id if pid < split else right[0].block_id) for pid in range(9)}
        output = tally_votes(tree, votes)
        grade1_deep = [t for t in output.grade1 if t is not GENESIS_TIP and t != genesis.block_id]
        assert len(grade1_deep) <= 1


def _vote(registry, pid, round_number, tip):
    from repro.sleepy.messages import make_vote

    return make_vote(registry, registry.secret_key(pid), round_number, tip)


def test_select_current_round_votes_filters_round(registry, tree, genesis):
    votes = [
        _vote(registry, 0, 5, genesis.block_id),
        _vote(registry, 1, 4, genesis.block_id),  # stale round: ignored
        _vote(registry, 2, 6, genesis.block_id),  # future round: ignored
    ]
    selected = select_current_round_votes(tree, votes, 5)
    assert selected == {0: genesis.block_id}


def test_select_current_round_votes_discards_equivocators(registry, tree, genesis):
    chain = extend(tree, genesis.block_id, 1)
    votes = [
        _vote(registry, 0, 5, genesis.block_id),
        _vote(registry, 0, 5, chain[0].block_id),  # equivocation
        _vote(registry, 0, 5, genesis.block_id),  # repeat after the fact
        _vote(registry, 1, 5, chain[0].block_id),
    ]
    selected = select_current_round_votes(tree, votes, 5)
    assert selected == {1: chain[0].block_id}


def test_select_current_round_votes_allows_duplicates(registry, tree, genesis):
    votes = [
        _vote(registry, 0, 5, genesis.block_id),
        _vote(registry, 0, 5, genesis.block_id),  # identical duplicate: fine
    ]
    selected = select_current_round_votes(tree, votes, 5)
    assert selected == {0: genesis.block_id}


def test_select_current_round_votes_drops_unknown_tips(registry, tree):
    votes = [_vote(registry, 0, 5, "ab" * 32)]
    assert select_current_round_votes(tree, votes, 5) == {}


def test_vote_for_empty_log_counts(registry, tree):
    votes = [_vote(registry, 0, 5, None)]
    selected = select_current_round_votes(tree, votes, 5)
    assert selected == {0: None}
    output = tally_votes(tree, selected)
    assert output.grade1 == (GENESIS_TIP,)
