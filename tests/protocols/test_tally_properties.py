"""Property-based laws of the GA tally (Figure 2's grading function)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import GENESIS_TIP
from repro.protocols.graded_agreement import tally_votes

from tests.chain.test_properties import build_random_tree

tree_structures = st.lists(st.integers(min_value=0, max_value=1_000), min_size=0, max_size=12)
betas = st.sampled_from([Fraction(1, 4), Fraction(1, 3), Fraction(1, 2)])


def draw_votes(data, universe, max_voters=12):
    count = data.draw(st.integers(min_value=0, max_value=max_voters), label="voters")
    return {pid: data.draw(st.sampled_from(universe), label=f"vote{pid}") for pid in range(count)}


@given(tree_structures, betas, st.data())
@settings(max_examples=150)
def test_tally_matches_brute_force_reference(structure, beta, data):
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    votes = draw_votes(data, universe)
    output = tally_votes(tree, votes, beta)

    m = len(votes)
    assert output.m == m
    for candidate in universe:
        count = sum(1 for tip in votes.values() if tree.is_prefix(candidate, tip))
        num, den = beta.numerator, beta.denominator
        expect_grade1 = den * count > (den - num) * m
        expect_grade0 = not expect_grade1 and den * count > num * m
        assert (candidate in output.grade1) == expect_grade1, candidate
        assert (candidate in output.grade0) == expect_grade0, candidate


@given(tree_structures, betas, st.data())
@settings(max_examples=120)
def test_grade1_outputs_form_a_chain(structure, beta, data):
    """β ≤ 1/2 ⇒ two grade-1 logs can never conflict (each needs more
    than half of the votes)."""
    tree, nodes = build_random_tree(structure)
    votes = draw_votes(data, nodes + [GENESIS_TIP])
    output = tally_votes(tree, votes, beta)
    for a in output.grade1:
        for b in output.grade1:
            assert tree.compatible(a, b)


@given(tree_structures, betas, st.data())
@settings(max_examples=120)
def test_grades_are_disjoint_and_closed_under_prefix(structure, beta, data):
    tree, nodes = build_random_tree(structure)
    votes = draw_votes(data, nodes + [GENESIS_TIP])
    output = tally_votes(tree, votes, beta)
    assert not set(output.grade1) & set(output.grade0)
    # Prefixes of a grade-1 log have at least as many votes: grade 1 too.
    for tip in output.grade1:
        node = tip
        while node is not GENESIS_TIP:
            node = tree.parent(node)
            assert node in output.grade1


@given(tree_structures, st.data())
@settings(max_examples=120)
def test_adding_a_supporting_vote_never_demotes(structure, data):
    """Monotonicity: one extra vote for an extension of Λ cannot remove
    Λ from the graded outputs' union, nor demote it from grade 1."""
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    votes = draw_votes(data, universe, max_voters=9)
    target = data.draw(st.sampled_from(universe), label="target")
    before = tally_votes(tree, votes, Fraction(1, 3))

    new_pid = max(votes, default=-1) + 1
    votes_after = dict(votes)
    votes_after[new_pid] = target
    after = tally_votes(tree, votes_after, Fraction(1, 3))

    if before.has_grade1(target):
        # m grew by 1 and target's count grew by 1: still > 2m/3.
        assert after.has_grade1(target)
    if target in before.all_output():
        assert target in after.all_output()


@given(tree_structures, betas, st.data())
@settings(max_examples=100)
def test_tally_is_anonymous(structure, beta, data):
    """Votes are counted, not attributed: permuting voter ids is a no-op."""
    tree, nodes = build_random_tree(structure)
    votes = draw_votes(data, nodes + [GENESIS_TIP])
    permuted = {pid + 1000: tip for pid, tip in votes.items()}
    assert tally_votes(tree, votes, beta) == tally_votes(tree, permuted, beta)
