"""The Algorithm 1 state machine: message cadence, decisions, proposals."""

from fractions import Fraction

import pytest

from repro.chain.block import genesis_block
from repro.chain.transactions import Transaction
from repro.harness import TOBRunConfig, build_simulation, run_tob
from repro.sleepy.messages import ProposeMessage, VoteMessage


def test_view_zero_sends_genesis_proposal():
    sim = build_simulation(TOBRunConfig(n=3, rounds=1, protocol="mmr"))
    process = sim.processes[0]
    messages = process.send(0)
    assert len(messages) == 1
    (propose,) = messages
    assert isinstance(propose, ProposeMessage)
    assert propose.view == 1
    assert propose.block == genesis_block()


def test_round_one_sends_single_vote():
    sim = build_simulation(TOBRunConfig(n=3, rounds=4, protocol="mmr"))
    sim.run(1)  # round 0 completes with its receive phase
    messages = sim.processes[0].send(1)
    assert len(messages) == 1
    assert isinstance(messages[0], VoteMessage)
    # Everyone proposed [b0] for view 1, so the vote is for [b0].
    assert messages[0].tip == genesis_block().block_id


def test_round_two_sends_vote_and_proposal():
    sim = build_simulation(TOBRunConfig(n=3, rounds=4, protocol="mmr"))
    sim.run(2)  # rounds 0-1 complete
    messages = sim.processes[0].send(2)
    kinds = sorted(type(m).__name__ for m in messages)
    assert kinds == ["ProposeMessage", "VoteMessage"]
    propose = next(m for m in messages if isinstance(m, ProposeMessage))
    assert propose.view == 2
    # The view-2 proposal extends C_1 = [b0].
    assert propose.block.parent == genesis_block().block_id


def test_decisions_happen_at_view_boundaries():
    trace = run_tob(TOBRunConfig(n=4, rounds=12, protocol="mmr"))
    assert trace.decisions, "synchronous fault-free run must decide"
    assert all(d.round % 2 == 1 for d in trace.decisions)
    # First possible decision: round 3 (outputs of GA_{1,2}).
    assert min(d.round for d in trace.decisions) == 3
    # Every process decides at every view boundary from round 3 on.
    deciders_at_3 = {d.pid for d in trace.decisions if d.round == 3}
    assert deciders_at_3 == set(range(4))


def test_chain_grows_one_block_per_view():
    trace = run_tob(TOBRunConfig(n=4, rounds=20, protocol="mmr"))
    final_tip = max((d.tip for d in trace.decisions), key=trace.tree.depth)
    # Round 2v−1 decides the view-(v−1) proposal, whose log holds the
    # genesis block plus one block per view 1..v−2 — depth v−1.  The
    # last decision round in 20 rounds is r=19 (v=10): depth 9.
    assert trace.tree.depth(final_tip) == 9


def test_delivered_logs_extend_monotonically():
    sim = build_simulation(TOBRunConfig(n=4, rounds=16, protocol="mmr"))
    previous_tips: dict[int, object] = {}
    for _ in range(16):
        sim.run(1)
        for pid, process in sim.processes.items():
            tip = process.delivered_tip
            if pid in previous_tips:
                assert sim.trace.tree.is_prefix(previous_tips[pid], tip)
            previous_tips[pid] = tip


def test_transactions_flow_into_decided_blocks():
    txs = [Transaction.create(9, nonce) for nonce in range(3)]
    trace = run_tob(
        TOBRunConfig(n=4, rounds=14, protocol="mmr", transactions={4: txs})
    )
    deepest = max((d.tip for d in trace.decisions), key=trace.tree.depth)
    included = trace.tree.payload_ids(deepest)
    for tx in txs:
        assert tx.tx_id in included


def test_transactions_not_duplicated_across_blocks():
    txs = [Transaction.create(9, nonce) for nonce in range(3)]
    trace = run_tob(
        TOBRunConfig(n=4, rounds=20, protocol="mmr", transactions={4: txs})
    )
    deepest = max((d.tip for d in trace.decisions), key=trace.tree.depth)
    all_txs = [
        tx.tx_id for block_id in trace.tree.path(deepest) for tx in trace.tree.get(block_id).payload
    ]
    assert len(all_txs) == len(set(all_txs))


def test_decision_events_deduplicate_prefix_redeliveries():
    trace = run_tob(TOBRunConfig(n=4, rounds=16, protocol="mmr"))
    for pid in range(4):
        tips = [d.tip for d in trace.decisions_by(pid)]
        assert len(tips) == len(set(tips))
        depths = [trace.tree.depth(t) for t in tips]
        assert depths == sorted(depths)


def test_beta_parameter_flows_through():
    trace = run_tob(TOBRunConfig(n=8, rounds=12, protocol="mmr", beta=Fraction(1, 4)))
    assert trace.decisions  # fault-free: stricter quorum still decides
    assert trace.meta["beta"] == Fraction(1, 4)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError, match="unknown protocol"):
        build_simulation(TOBRunConfig(n=2, rounds=1, protocol="pbft"))
