"""Byzantine proposers: sortition abuse and the proposal filter.

Also documents a finding of this reproduction: Algorithm 1's proposal
rule, read literally, admits *prefix* proposals that regress the chain
and break the Lemma 3 induction — see the xfail test at the bottom and
the convention note in ``repro/protocols/tob_base.py``.
"""

import pytest

from repro.analysis import chain_growth_rate, check_safety, decision_rounds
from repro.chain.block import GENESIS_TIP, genesis_block
from repro.harness import TOBRunConfig, build_simulation, run_simulation, run_tob
from repro.sleepy.adversary import AdversarialProposerAdversary


def run_with_proposers(mode: str, n=12, byz=3, rounds=60, protocol="resilient", eta=3):
    return run_tob(
        TOBRunConfig(
            n=n,
            rounds=rounds,
            protocol=protocol,
            eta=eta,
            adversary=AdversarialProposerAdversary(list(range(n - byz, n)), mode=mode),
        )
    )


def test_conflicting_proposals_are_filtered_out():
    """Root-block proposals conflict with L_{v−1}: rejected regardless of
    VRF rank, so every view stays productive."""
    trace = run_with_proposers("conflicting")
    assert check_safety(trace).ok
    gaps = [b - a for a, b in zip(decision_rounds(trace), decision_rounds(trace)[1:])]
    assert gaps and all(gap == 2 for gap in gaps)


def test_stale_proposals_cost_only_their_sortition_share():
    """A stale [b0] proposal winning sortition wastes that view but can
    neither fork nor stall the chain."""
    trace = run_with_proposers("stale", rounds=120)
    assert check_safety(trace).ok
    productive = len(decision_rounds(trace))
    views = 59
    share = productive / views
    # 3 of 12 Byzantine ⇒ honest sortition share 0.75; allow sampling slack.
    assert 0.55 < share < 0.95
    assert chain_growth_rate(trace, start=10) > 0.25


def test_stale_proposer_behaviour_identical_for_mmr():
    mmr = run_with_proposers("stale", protocol="mmr", eta=0)
    resilient = run_with_proposers("stale", protocol="resilient", eta=3)
    assert check_safety(mmr).ok and check_safety(resilient).ok
    assert [
        (d.pid, d.round, d.tip) for d in mmr.decisions
    ] == [(d.pid, d.round, d.tip) for d in resilient.decisions]


def test_adversarial_proposer_validation():
    with pytest.raises(ValueError, match="mode"):
        AdversarialProposerAdversary([0], mode="weird")


@pytest.mark.xfail(
    reason=(
        "Documents the literal reading of Algorithm 1 line 6-7: voting a "
        "max-VRF proposal that is a *prefix* of L_{v-1} regresses the chain "
        "and forks it under full synchrony — which is why this repository's "
        "implementation never votes below L_{v-1} (see tob_base.py). This "
        "test runs a literal-reading process and shows the fork."
    ),
    strict=True,
)
def test_literal_proposal_rule_is_unsafe_under_stale_sortition():
    config = TOBRunConfig(
        n=12,
        rounds=60,
        protocol="resilient",
        eta=3,
        adversary=AdversarialProposerAdversary([9, 10, 11], mode="stale"),
    )
    sim = build_simulation(config)
    for process in sim.processes.values():
        _patch_to_literal_rule(process)
    trace = run_simulation(sim, config)
    assert check_safety(trace).ok  # xfail: the literal rule forks the chain


def _patch_to_literal_rule(process):
    """Replace the selection rule with the paper's literal wording."""

    def literal_select(view, longest_any):
        best = None
        for message in process._proposals.get(view, {}).values():
            if message is None or message.tip not in process.tree:
                continue
            if process.tree.conflict(message.tip, longest_any):
                continue
            if best is None or (message.vrf.value_num, message.sender) > (
                best.vrf.value_num,
                best.sender,
            ):
                best = message
        return longest_any if best is None else best.tip  # may regress!

    process._select_proposal = literal_select


def test_sortition_is_unbiasable():
    """The adversary cannot choose its VRF value: across seeds its win
    rate stays near its population share."""
    wins = trials = 0
    for seed in range(8):
        config = TOBRunConfig(
            n=10,
            rounds=40,
            protocol="mmr",
            seed=seed,
            adversary=AdversarialProposerAdversary([8, 9], mode="stale"),
        )
        trace = run_tob(config)
        views = (trace.horizon - 1) // 2
        productive = len(decision_rounds(trace))
        trials += views
        wins += views - productive  # unproductive view = adversary won
    rate = wins / trials
    assert 0.08 < rate < 0.35  # population share is 0.2


def test_stale_proposals_never_reintroduce_genesis_decisions():
    trace = run_with_proposers("stale")
    # The bootstrap decision at round 3 is legitimately [b0] (the view-1
    # proposal); after that, stale sortition wins must never drag a
    # delivered log back to the genesis.
    late = [d for d in trace.decisions if d.round > 3]
    assert late
    assert all(d.tip not in (GENESIS_TIP, genesis_block().block_id) for d in late)
