"""Production hardening: bounded memory, accountability, telemetry."""

from repro.analysis import check_safety
from repro.harness import TOBRunConfig, build_simulation, run_simulation, run_tob
from repro.sleepy.adversary import EquivocatingVoteAdversary


def test_proposal_store_is_memory_bounded():
    config = TOBRunConfig(n=6, rounds=60, protocol="resilient", eta=3)
    sim = build_simulation(config)
    run_simulation(sim, config)
    for process in sim.processes.values():
        # Views 0..30 happened; only a handful may remain buffered.
        assert len(process._proposals) <= 4


def test_vote_store_is_memory_bounded():
    config = TOBRunConfig(n=6, rounds=60, protocol="resilient", eta=3)
    sim = build_simulation(config)
    run_simulation(sim, config)
    for process in sim.processes.values():
        # ≤ one vote per process per unexpired round (η + 1 rounds).
        assert len(process._votes) <= 6 * (3 + 2)


def test_equivocating_voters_are_detected_by_all():
    config = TOBRunConfig(
        n=8, rounds=16, protocol="resilient", eta=8, adversary=EquivocatingVoteAdversary([7])
    )
    sim = build_simulation(config)
    run_simulation(sim, config)
    for pid in range(7):
        detected = sim.processes[pid].detected_equivocators()
        assert 7 in detected
        # No false accusations: honest processes are never detected.
        assert detected <= {7}


def test_no_equivocators_detected_in_clean_runs():
    config = TOBRunConfig(n=6, rounds=16, protocol="mmr")
    sim = build_simulation(config)
    run_simulation(sim, config)
    assert all(not p.detected_equivocators() for p in sim.processes.values())


def test_telemetry_records_quorum_margins():
    config = TOBRunConfig(n=9, rounds=20, protocol="resilient", eta=2, record_telemetry=True)
    sim = build_simulation(config)
    trace = run_simulation(sim, config)
    assert check_safety(trace).ok
    process = sim.processes[0]
    assert process.telemetry, "telemetry must be collected when enabled"
    for sample in process.telemetry:
        assert 0 < sample.m <= 9
        assert 0 <= sample.best_count <= sample.m
    # Unanimous fault-free rounds: margin = m − floor(2m/3) = 3 for m = 9.
    steady = [s for s in process.telemetry if s.m == 9]
    assert steady and all(s.margin == 3 and s.best_count == 9 for s in steady)


def test_telemetry_off_by_default():
    trace = run_tob(TOBRunConfig(n=4, rounds=8, protocol="mmr"))
    assert check_safety(trace).ok
    sim = build_simulation(TOBRunConfig(n=4, rounds=8, protocol="mmr"))
    assert sim.processes[0].telemetry == []
