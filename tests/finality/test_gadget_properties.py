"""Property-based finality-gadget invariants under random ack streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import GENESIS_TIP
from repro.finality.gadget import FinalityGadget

from tests.chain.test_properties import build_random_tree

tree_structures = st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=10)
ack_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),  # sender
        st.integers(min_value=0, max_value=20),  # round tag
        st.integers(min_value=0, max_value=1_000),  # tip selector
    ),
    max_size=60,
)


def replay(structure, acks):
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    gadget = FinalityGadget(9, tree)
    history = [gadget.finalized_tip]
    for sender, round_tag, selector in acks:
        gadget.record_ack(sender, round_tag, universe[selector % len(universe)])
        gadget.advance(round_tag)
        history.append(gadget.finalized_tip)
    return tree, gadget, history


@given(tree_structures, ack_streams)
@settings(max_examples=150, deadline=None)
def test_finalized_prefix_only_ever_extends(structure, acks):
    tree, _, history = replay(structure, acks)
    for earlier, later in zip(history, history[1:]):
        assert tree.is_prefix(earlier, later)


@given(tree_structures, ack_streams)
@settings(max_examples=150, deadline=None)
def test_finalization_is_quorum_justified(structure, acks):
    """Whenever the finalised tip advances, strictly more than 2/3 of all
    processes' latest visible acks extend the new tip at that moment."""
    from repro.core.expiration import LatestVoteStore

    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    gadget = FinalityGadget(9, tree)
    mirror = LatestVoteStore()
    for sender, round_tag, selector in acks:
        tip = universe[selector % len(universe)]
        gadget.record_ack(sender, round_tag, tip)
        mirror.record(sender, round_tag, tip)
        before = gadget.finalized_tip
        event = gadget.advance(round_tag)
        if event is not None:
            assert tree.is_prefix(before, event.tip) and event.tip != before
            visible = mirror.latest(0, round_tag)
            supporters = sum(
                1 for t in visible.values() if t in tree and tree.is_prefix(event.tip, t)
            )
            assert supporters * 3 > 2 * 9, (supporters, event)


@given(tree_structures, ack_streams)
@settings(max_examples=100, deadline=None)
def test_advance_is_idempotent_without_new_acks(structure, acks):
    _, gadget, _ = replay(structure, acks)
    tip_before = gadget.finalized_tip
    assert gadget.advance(50) is None or gadget.finalized_tip != tip_before
    # Calling again with no new information changes nothing further.
    settled = gadget.finalized_tip
    assert gadget.advance(50) is None
    assert gadget.finalized_tip == settled