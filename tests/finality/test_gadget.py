"""Finality gadget accounting: quorums, monotonicity, equivocation."""

from fractions import Fraction

import pytest

from repro.chain.block import GENESIS_TIP, genesis_block
from repro.chain.tree import BlockTree
from repro.finality.gadget import FinalityGadget

from tests.conftest import extend


@pytest.fixture
def setup(tree, genesis):
    chain = extend(tree, genesis.block_id, 4)
    return tree, [genesis.block_id] + [b.block_id for b in chain]


def test_no_acks_no_finality(setup):
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    assert gadget.advance(0) is None
    assert gadget.finalized_tip is GENESIS_TIP


def test_quorum_is_strict_two_thirds_of_all_processes(setup):
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    for pid in range(6):  # 6 of 9 == 2/3 exactly: not strictly more
        gadget.record_ack(pid, 1, tips[2])
    assert gadget.advance(1) is None
    gadget.record_ack(6, 1, tips[2])  # 7 of 9
    event = gadget.advance(1)
    assert event is not None and event.tip == tips[2]
    assert event.acks == 7
    assert gadget.finalized_tip == tips[2]


def test_denominator_is_all_processes_not_awake_ones(setup):
    """3 acks of n=9 never finalise, even if they are all that exists."""
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    for pid in range(3):
        gadget.record_ack(pid, 1, tips[4])
    assert gadget.advance(1) is None


def test_deeper_acks_count_for_prefixes(setup):
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    # Mixed depths: everyone is at least at depth 2.
    for pid in range(4):
        gadget.record_ack(pid, 1, tips[4])
    for pid in range(4, 7):
        gadget.record_ack(pid, 1, tips[2])
    event = gadget.advance(1)
    assert event is not None and event.tip == tips[2]


def test_finalizes_deepest_quorum_prefix(setup):
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    for pid in range(7):
        gadget.record_ack(pid, 1, tips[3])
    event = gadget.advance(1)
    assert event.tip == tips[3]  # not a shallower prefix


def test_finality_is_monotone(setup):
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    for pid in range(7):
        gadget.record_ack(pid, 1, tips[3])
    gadget.advance(1)
    # Later acks regress (e.g. processes rebooted): finality must not.
    for pid in range(9):
        gadget.record_ack(pid, 2, tips[1])
    assert gadget.advance(2) is None
    assert gadget.finalized_tip == tips[3]


def test_latest_ack_per_process_wins(setup):
    tree, tips = setup
    gadget = FinalityGadget(9, tree)
    for pid in range(7):
        gadget.record_ack(pid, 1, tips[2])
        gadget.record_ack(pid, 3, tips[4])
    event = gadget.advance(3)
    assert event.tip == tips[4]


def test_equivocating_acks_are_discarded(setup, genesis):
    tree, tips = setup
    fork = extend(tree, genesis.block_id, 1, salt=9)
    gadget = FinalityGadget(9, tree)
    for pid in range(6):
        gadget.record_ack(pid, 1, tips[2])
    gadget.record_ack(6, 1, tips[2])
    gadget.record_ack(6, 1, fork[0].block_id)  # equivocation: pid 6 void
    assert gadget.advance(1) is None


def test_conflicting_fork_cannot_finalize_past_quorum(setup, genesis):
    tree, tips = setup
    fork = extend(tree, genesis.block_id, 2, salt=9)
    gadget = FinalityGadget(9, tree)
    for pid in range(7):
        gadget.record_ack(pid, 1, tips[3])
    gadget.advance(1)
    # The whole network later acks a conflicting fork (only possible
    # with > n/3 Byzantine or a broken inner protocol): the gadget
    # refuses to revert — candidates must extend the finalised tip.
    for pid in range(9):
        gadget.record_ack(pid, 2, fork[1].block_id)
    assert gadget.advance(2) is None
    assert gadget.finalized_tip == tips[3]


def test_configurable_quorum(setup):
    tree, tips = setup
    gadget = FinalityGadget(10, tree, quorum=Fraction(1, 2))
    for pid in range(6):  # 6 of 10 > 1/2
        gadget.record_ack(pid, 1, tips[1])
    assert gadget.advance(1) is not None


def test_validation():
    tree = BlockTree([genesis_block()])
    with pytest.raises(ValueError):
        FinalityGadget(0, tree)
    with pytest.raises(ValueError):
        FinalityGadget(4, tree, quorum=Fraction(1, 4))
    with pytest.raises(ValueError):
        FinalityGadget(4, tree, quorum=Fraction(1))
