"""End-to-end ebb-and-flow runs through the simulator."""

from repro.analysis import check_safety, max_reorg_depth
from repro.crypto.signatures import KeyRegistry
from repro.finality import ebb_and_flow_factory
from repro.sleepy import (
    FullParticipation,
    NullAdversary,
    Simulation,
    SpikeSchedule,
    SplitVoteAttack,
    SynchronousNetwork,
    WindowedAsynchrony,
)


def run_ebb_and_flow(protocol, eta, n=20, rounds=24, schedule=None, adversary=None, network=None):
    registry = KeyRegistry(n, run_seed=0)
    sim = Simulation(
        registry,
        schedule or FullParticipation(n),
        adversary or NullAdversary(),
        network or SynchronousNetwork(),
        ebb_and_flow_factory(protocol, eta=eta, n=n),
    )
    trace = sim.run(rounds)
    return sim, trace


def test_finality_tracks_availability_under_full_participation():
    sim, trace = run_ebb_and_flow("resilient", eta=3)
    process = sim.processes[0]
    avail = trace.tree.depth(process.delivered_tip)
    final = process.inner.tree.depth(process.finalized_tip)
    assert avail >= 10
    assert avail - final <= 1  # finality lags at most one view
    assert check_safety(trace).ok


def test_finality_is_prefix_of_availability():
    sim, _ = run_ebb_and_flow("resilient", eta=3)
    for process in sim.processes.values():
        assert process.inner.tree.is_prefix(process.finalized_tip, process.delivered_tip)


def test_finality_stalls_below_quorum_participation():
    """Availability-finality dilemma: with 40% awake the chain grows but
    nothing new finalises (quorum is over all n)."""
    n = 20
    schedule = SpikeSchedule(n, drop_fraction=0.6, start=8, duration=10)
    sim, trace = run_ebb_and_flow("resilient", eta=3, n=n, rounds=26, schedule=schedule)
    process = sim.processes[0]
    stalled = [e for e in process.finalizations if 10 <= e.round < 18]
    assert not stalled, "finality must stall below the 2/3 quorum"
    grown = [d for d in trace.decisions if 10 <= d.round < 18]
    assert grown, "the available chain must keep growing"
    # After the outage ends, finality catches back up.
    resumed = [e for e in process.finalizations if e.round >= 19]
    assert resumed


def test_attack_reorgs_available_chain_but_never_finality():
    n = 20
    byz = list(range(16, 20))
    attack = dict(
        adversary=SplitVoteAttack(byz, target_round=10),
        network=WindowedAsynchrony(ra=9, pi=1),
    )
    sim, trace = run_ebb_and_flow("mmr", eta=0, n=n, **attack)
    assert not check_safety(trace).ok
    assert max_reorg_depth(trace) >= 1  # the user-facing chain rewrote itself
    finalized = [sim.processes[pid].finalized_tip for pid in range(16)]
    for a in finalized:
        for b in finalized:
            assert trace.tree.compatible(a, b)


def test_resilient_inner_eliminates_the_reorg():
    n = 20
    byz = list(range(16, 20))
    sim, trace = run_ebb_and_flow(
        "resilient",
        eta=3,
        n=n,
        adversary=SplitVoteAttack(byz, target_round=10),
        network=WindowedAsynchrony(ra=9, pi=1),
    )
    assert check_safety(trace).ok
    assert max_reorg_depth(trace) == 0


def test_factory_rejects_unknown_protocol():
    import pytest

    factory = ebb_and_flow_factory("hotstuff", eta=0, n=4)
    registry = KeyRegistry(4, run_seed=0)
    from repro.sleepy.messages import CachedVerifier

    with pytest.raises(ValueError, match="unknown protocol"):
        factory(0, registry.secret_key(0), CachedVerifier(registry))
