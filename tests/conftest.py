"""Shared fixtures and helpers for the whole test suite."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.chain.block import Block, genesis_block
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry
from repro.sleepy.messages import CachedVerifier


def subprocess_env() -> dict[str, str]:
    """Env for subprocesses that import ``repro`` (examples, ``-m repro``).

    Subprocesses do not inherit pytest's ``pythonpath`` ini setting, so
    ``src/`` must be forwarded through ``PYTHONPATH`` explicitly.
    """
    src = Path(__file__).resolve().parents[1] / "src"
    return {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            p for p in (str(src), os.environ.get("PYTHONPATH")) if p
        ),
    }


@pytest.fixture
def registry() -> KeyRegistry:
    """A registry of 32 processes (large enough for every unit test)."""
    return KeyRegistry(32, run_seed=7)


@pytest.fixture
def verifier(registry: KeyRegistry) -> CachedVerifier:
    return CachedVerifier(registry)


@pytest.fixture
def genesis() -> Block:
    return genesis_block()


@pytest.fixture
def tree(genesis: Block) -> BlockTree:
    return BlockTree([genesis])


def make_chain(tree: BlockTree, length: int, proposer: int = 0, fork_salt: int = 0) -> list[Block]:
    """Append a chain of ``length`` blocks to the deepest tip; returns them.

    ``fork_salt`` differentiates chains so tests can build forks.
    """
    parent = genesis_block().block_id
    blocks: list[Block] = []
    for i in range(length):
        block = Block(parent=parent, proposer=proposer, view=i + 1, salt=fork_salt)
        tree.add(block)
        blocks.append(block)
        parent = block.block_id
    return blocks


def extend(tree: BlockTree, parent_id, count: int, proposer: int = 0, salt: int = 0) -> list[Block]:
    """Append ``count`` blocks under ``parent_id``; returns them."""
    blocks: list[Block] = []
    parent = parent_id
    for i in range(count):
        block = Block(parent=parent, proposer=proposer, view=i + 1, salt=salt)
        tree.add(block)
        blocks.append(block)
        parent = block.block_id
    return blocks
