"""Checkers must detect planted violations and pass clean traces."""

from repro.analysis.checkers import (
    check_asynchrony_resilience,
    check_healing,
    check_safety,
    check_transaction_liveness,
)
from repro.chain.block import Block, genesis_block
from repro.chain.transactions import Transaction
from repro.chain.tree import BlockTree
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace

from tests.conftest import extend


def trace_with_rounds(n=4, rounds=12, honest=None) -> Trace:
    tree = BlockTree([genesis_block()])
    trace = Trace(n=n, tree=tree)
    honest = honest if honest is not None else frozenset(range(n))
    for r in range(rounds):
        trace.rounds.append(
            RoundRecord(
                round=r,
                awake=honest,
                honest=honest,
                byzantine=frozenset(),
                asynchronous=False,
                votes_sent=0,
                proposes_sent=0,
                other_sent=0,
            )
        )
    return trace


def test_safety_passes_on_compatible_decisions():
    trace = trace_with_rounds()
    chain = extend(trace.tree, genesis_block().block_id, 3)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=chain[0].block_id),
        DecisionEvent(pid=1, round=5, view=2, tip=chain[1].block_id),
        DecisionEvent(pid=0, round=7, view=3, tip=chain[2].block_id),
    ]
    report = check_safety(trace)
    assert report.ok and report.conflicts == []
    assert report.decisions_checked == 3


def test_safety_detects_forks():
    trace = trace_with_rounds()
    left = extend(trace.tree, genesis_block().block_id, 1, salt=1)
    right = extend(trace.tree, genesis_block().block_id, 1, salt=2)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=left[0].block_id),
        DecisionEvent(pid=1, round=3, view=1, tip=right[0].block_id),
    ]
    report = check_safety(trace)
    assert not report.ok
    assert len(report.conflicts) == 1


def test_safety_on_empty_trace():
    assert check_safety(trace_with_rounds()).ok


def test_resilience_ignores_unrelated_decisions():
    trace = trace_with_rounds()
    chain = extend(trace.tree, genesis_block().block_id, 4)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=chain[0].block_id),
        DecisionEvent(pid=1, round=7, view=3, tip=chain[2].block_id),
    ]
    assert check_asynchrony_resilience(trace, ra=4, pi=2).ok


def test_resilience_detects_conflicts_with_pre_async_decisions():
    trace = trace_with_rounds()
    chain = extend(trace.tree, genesis_block().block_id, 2, salt=1)
    fork = extend(trace.tree, genesis_block().block_id, 1, salt=2)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=chain[1].block_id),  # pre-async
        DecisionEvent(pid=1, round=6, view=2, tip=fork[0].block_id),  # in-window, pid 1 ∈ H_ra
    ]
    report = check_asynchrony_resilience(trace, ra=4, pi=2)
    assert not report.ok
    assert report.pre_async_tips == {chain[1].block_id}


def test_resilience_window_exempts_processes_outside_h_ra():
    # pid 3 was not honest-awake at ra: its in-window decision is exempt,
    # but the same decision after the window is a violation.
    trace = trace_with_rounds(honest=frozenset({0, 1, 2}))
    chain = extend(trace.tree, genesis_block().block_id, 2, salt=1)
    fork = extend(trace.tree, genesis_block().block_id, 1, salt=2)
    pre = DecisionEvent(pid=0, round=3, view=1, tip=chain[1].block_id)
    in_window = DecisionEvent(pid=3, round=6, view=2, tip=fork[0].block_id)
    trace.decisions = [pre, in_window]
    assert check_asynchrony_resilience(trace, ra=4, pi=2).ok

    after_window = DecisionEvent(pid=3, round=8, view=3, tip=fork[0].block_id)
    trace.decisions = [pre, after_window]
    assert not check_asynchrony_resilience(trace, ra=4, pi=2).ok


def test_healing_requires_post_window_decisions():
    trace = trace_with_rounds(rounds=20)
    chain = extend(trace.tree, genesis_block().block_id, 2)
    trace.decisions = [DecisionEvent(pid=0, round=3, view=1, tip=chain[0].block_id)]
    report = check_healing(trace, last_async_round=8, k=1)
    assert not report.ok and not report.liveness_ok and report.safety_ok

    trace.decisions.append(DecisionEvent(pid=0, round=11, view=5, tip=chain[1].block_id))
    report = check_healing(trace, last_async_round=8, k=1)
    assert report.ok
    assert report.rounds_to_decision == 2


def test_healing_detects_post_window_forks():
    trace = trace_with_rounds(rounds=20)
    left = extend(trace.tree, genesis_block().block_id, 1, salt=1)
    right = extend(trace.tree, genesis_block().block_id, 1, salt=2)
    trace.decisions = [
        DecisionEvent(pid=0, round=11, view=5, tip=left[0].block_id),
        DecisionEvent(pid=1, round=13, view=6, tip=right[0].block_id),
    ]
    report = check_healing(trace, last_async_round=8, k=1)
    assert not report.ok and not report.safety_ok


def test_transaction_liveness():
    trace = trace_with_rounds()
    tx = Transaction.create(0, 0)
    with_tx = Block(parent=genesis_block().block_id, proposer=0, view=1, payload=(tx,))
    trace.tree.add(with_tx)
    later = Block(parent=with_tx.block_id, proposer=0, view=2)
    trace.tree.add(later)

    trace.decisions = [DecisionEvent(pid=0, round=3, view=1, tip=with_tx.block_id)]
    report = check_transaction_liveness(trace, tx.tx_id)
    assert report.ok and report.included_round == 3

    assert not check_transaction_liveness(trace, "deadbeef").ok

    # A process whose last delivery after inclusion misses the tx is a laggard.
    fork = Block(parent=genesis_block().block_id, proposer=1, view=1, salt=9)
    trace.tree.add(fork)
    trace.decisions.append(DecisionEvent(pid=1, round=5, view=2, tip=fork.block_id))
    report = check_transaction_liveness(trace, tx.tx_id)
    assert not report.ok and report.laggards == {1}
