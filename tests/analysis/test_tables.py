"""Table rendering."""

import pytest

from repro.analysis.tables import format_table


def test_alignment_and_floats():
    table = format_table(
        ["name", "value"],
        [["alpha", 0.123456], ["b", 12]],
        title="Demo",
    )
    lines = table.splitlines()
    assert lines[0] == "Demo"
    assert lines[1].startswith("name ")
    assert "0.1235" in table
    assert "12" in table
    # Header separator matches column widths.
    assert set(lines[2]) <= {"-", " "}


def test_booleans_render_as_yes_no():
    table = format_table(["ok"], [[True], [False]])
    assert "yes" in table and "no" in table


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError, match="row width"):
        format_table(["a", "b"], [[1]])
