"""Metrics on real protocol traces."""

from repro.analysis.metrics import (
    block_decision_latencies,
    chain_growth_rate,
    decided_depth_timeline,
    decision_gaps,
    decision_rounds,
    message_totals,
    participation_timeline,
    transactions_decided,
)
from repro.chain.transactions import Transaction
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.schedule import SpikeSchedule


def steady_trace(rounds=20):
    return run_tob(TOBRunConfig(n=5, rounds=rounds, protocol="mmr"))


def test_decided_depth_timeline_monotone():
    timeline = decided_depth_timeline(steady_trace())
    assert len(timeline) == 20
    depths = [p.depth for p in timeline]
    assert depths == sorted(depths)
    assert depths[-1] == 9


def test_decision_rounds_and_gaps():
    trace = steady_trace()
    rounds = decision_rounds(trace)
    assert rounds[0] == 3
    assert decision_gaps(trace) == [2] * (len(rounds) - 1)


def test_chain_growth_rate():
    trace = steady_trace()
    rate = chain_growth_rate(trace)
    assert 0.4 < rate < 0.55  # one block per two rounds, minus startup
    assert chain_growth_rate(trace, start=10, end=10) == 0.0


def test_block_decision_latencies_steady_state():
    latencies = block_decision_latencies(steady_trace())
    # Genesis (view 0, "proposed" at round 0) decides at round 3; every
    # later block at the MMR headline latency of 3 rounds.
    assert set(latencies) == {3}


def test_transactions_decided():
    txs = [Transaction.create(1, i) for i in range(4)]
    trace = run_tob(TOBRunConfig(n=5, rounds=16, protocol="mmr", transactions={2: txs}))
    assert transactions_decided(trace) == 4
    assert transactions_decided(steady_trace()) == 0


def test_message_totals():
    trace = steady_trace(rounds=4)
    totals = message_totals(trace)
    # Round 0: 5 proposes.  Rounds 1-3: 5 votes each; rounds 2: +5 proposes.
    assert totals["proposes"] == 10
    assert totals["votes"] == 15
    assert totals["other"] == 0


def test_participation_timeline():
    schedule = SpikeSchedule(10, drop_fraction=0.5, start=2, duration=2)
    trace = run_tob(TOBRunConfig(n=10, rounds=6, protocol="mmr", schedule=schedule))
    timeline = participation_timeline(trace)
    assert timeline[0] == (0, 10, 10)
    assert timeline[2] == (2, 5, 5)
    assert timeline[4] == (4, 10, 10)
