"""Trace serialisation round-trips."""

from fractions import Fraction

import pytest

from repro.analysis.checkers import check_safety
from repro.analysis.export import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.analysis.metrics import decided_depth_timeline
from repro.chain.transactions import Transaction
from repro.harness import TOBRunConfig, run_tob
from repro.workloads import split_vote_attack_scenario


def make_trace():
    txs = [Transaction.create(1, i, b"x") for i in range(3)]
    return run_tob(
        TOBRunConfig(n=6, rounds=14, protocol="resilient", eta=2, transactions={3: txs})
    )


def test_round_trip_preserves_everything():
    original = make_trace()
    rebuilt = trace_from_dict(trace_to_dict(original))

    assert rebuilt.n == original.n
    assert rebuilt.meta == original.meta
    assert rebuilt.decisions == original.decisions
    assert rebuilt.rounds == original.rounds
    # Block identity is content-derived, so the trees must agree exactly.
    for tip in original.tree.tips():
        assert tip in rebuilt.tree
        assert rebuilt.tree.path(tip) == original.tree.path(tip)
        assert rebuilt.tree.payload_ids(tip) == original.tree.payload_ids(tip)


def test_checkers_work_on_reloaded_traces(tmp_path):
    original = make_trace()
    path = tmp_path / "trace.json"
    save_trace(original, path)
    rebuilt = load_trace(path)
    assert check_safety(rebuilt).ok == check_safety(original).ok
    assert decided_depth_timeline(rebuilt) == decided_depth_timeline(original)


def test_unsafe_trace_round_trips_conflicts(tmp_path):
    original = run_tob(split_vote_attack_scenario("mmr", eta=0, pi=1, n=20))
    path = tmp_path / "attack.json"
    save_trace(original, path)
    rebuilt = load_trace(path)
    assert not check_safety(rebuilt).ok
    assert len(check_safety(rebuilt).conflicts) == len(check_safety(original).conflicts)


def test_meta_fractions_round_trip():
    original = make_trace()
    original.meta["beta"] = Fraction(1, 3)
    original.meta["window"] = (9, 2)
    rebuilt = trace_from_dict(trace_to_dict(original))
    assert rebuilt.meta["beta"] == Fraction(1, 3)
    assert rebuilt.meta["window"] == (9, 2)


def test_version_check():
    original = make_trace()
    data = trace_to_dict(original)
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        trace_from_dict(data)


def test_corrupt_block_set_rejected():
    original = make_trace()
    data = trace_to_dict(original)
    # Orphan every block by pointing the roots at a missing parent.
    for block in data["blocks"]:
        block["parent"] = "ff" * 32
    with pytest.raises(ValueError, match="tree"):
        trace_from_dict(data)
