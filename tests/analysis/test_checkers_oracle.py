"""Randomized-oracle tests: checkers vs brute-force recomputation.

In the style of ``tests/core/test_incremental_votes.py``: each checker
in :mod:`repro.analysis.checkers` is confronted with a naive,
straight-from-the-definition recomputation over the raw trace —

* Definition 2 safety as an all-pairs scan over decision events,
* Definition 5 resilience as the literal per-event window constraint,
* Definition 6 healing as an all-pairs scan plus the liveness margin —

on three families of seeded protocol traces (honest churn runs, the
split-vote attack with planted violations, starved-delivery blackouts)
and on fully synthetic randomized traces (random block trees with
random decision events, including planted forks and empty-log tips).
"""

import random

import pytest

from repro.analysis.checkers import (
    check_asynchrony_resilience,
    check_healing,
    check_safety,
)
from repro.chain.block import Block, genesis_block
from repro.chain.tree import BlockTree
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.schedule import RandomChurnSchedule
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace
from repro.workloads import blackout_scenario, split_vote_attack_scenario


# ----------------------------------------------------------------------
# Brute-force recomputations (the definitions, literally)
# ----------------------------------------------------------------------
def brute_safety_conflicts(trace: Trace) -> set[frozenset]:
    """Definition 2, all pairs: the set of conflicting decided-tip pairs."""
    pairs: set[frozenset] = set()
    decisions = trace.decisions
    for i, a in enumerate(decisions):
        for b in decisions[i + 1 :]:
            if trace.tree.conflict(a.tip, b.tip):
                pairs.add(frozenset({a.tip, b.tip}))
    return pairs


def brute_resilience_violations(trace: Trace, ra: int, pi: int) -> set[tuple]:
    """Definition 5, literally: every decision event that conflicts with
    ``D_ra`` while the definition constrains its decider."""
    d_ra = {d.tip for d in trace.decisions if d.round <= ra}
    h_ra = trace.record(ra).honest if ra < trace.horizon else frozenset()
    violations: set[tuple] = set()
    for event in trace.decisions:
        if event.round <= ra:
            continue
        during_window = event.round <= ra + pi + 1
        if during_window and event.pid not in h_ra:
            continue  # the window only binds processes of H_ra
        if any(trace.tree.conflict(event.tip, tip) for tip in d_ra):
            violations.add((event.pid, event.round, event.view, event.tip))
    return violations


def brute_healing(trace: Trace, last_async_round: int, k: int = 1, margin: int = 8) -> dict:
    """Definition 6, literally: post-healing pairwise safety + a fresh
    decision within the liveness margin."""
    healed_from = last_async_round + k
    post = [d for d in trace.decisions if d.round > healed_from]
    safety_ok = not any(
        trace.tree.conflict(a.tip, b.tip) for i, a in enumerate(post) for b in post[i + 1 :]
    )
    first_after = min((d.round for d in post), default=None)
    rounds_to = None if first_after is None else first_after - healed_from
    liveness_ok = rounds_to is not None and rounds_to <= margin
    return {
        "ok": safety_ok and liveness_ok,
        "safety_ok": safety_ok,
        "liveness_ok": liveness_ok,
        "rounds_to_decision": rounds_to,
    }


def assert_checkers_match_brute_force(trace: Trace, ra: int, pi: int, healed: int) -> None:
    safety = check_safety(trace, max_conflicts=1 << 20)
    brute_pairs = brute_safety_conflicts(trace)
    assert safety.ok == (not brute_pairs)
    assert {frozenset({c.first.tip, c.second.tip}) for c in safety.conflicts} == brute_pairs

    resilience = check_asynchrony_resilience(trace, ra=ra, pi=pi)
    brute_bad = brute_resilience_violations(trace, ra, pi)
    assert resilience.ok == (not brute_bad)
    assert {
        (c.second.pid, c.second.round, c.second.view, c.second.tip)
        for c in resilience.conflicts
    } == brute_bad

    healing = check_healing(trace, last_async_round=healed)
    brute = brute_healing(trace, healed)
    assert healing.ok == brute["ok"]
    assert healing.safety_ok == brute["safety_ok"]
    assert healing.liveness_ok == brute["liveness_ok"]
    assert healing.rounds_to_decision == brute["rounds_to_decision"]


# ----------------------------------------------------------------------
# Seeded protocol traces
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_honest_churn_traces_agree_with_brute_force(seed):
    trace = run_tob(
        TOBRunConfig(
            n=8,
            rounds=20,
            protocol="resilient",
            eta=3,
            schedule=RandomChurnSchedule(8, 0.15, seed=seed, min_awake=5),
            seed=seed,
        )
    )
    rng = random.Random(seed)
    for _ in range(6):
        ra = rng.randrange(0, trace.horizon + 2)
        pi = rng.randrange(0, 6)
        assert_checkers_match_brute_force(trace, ra, pi, healed=rng.randrange(0, 24))


@pytest.mark.parametrize("pi,eta", [(1, 0), (2, 0), (1, 2), (3, 6)])
def test_split_vote_traces_agree_with_brute_force(pi, eta):
    """The planted-violation family: mmr with η=0 forks under the attack
    (the brute force must find the same conflicts the checker reports);
    resilient with π < η does not."""
    protocol = "mmr" if eta == 0 else "resilient"
    config = split_vote_attack_scenario(protocol, eta=eta, pi=pi, n=12)
    trace = run_tob(config)
    ra = config.meta["ra"]
    if eta == 0:
        assert brute_safety_conflicts(trace)  # the attack really landed
    else:
        assert not brute_safety_conflicts(trace)
    rng = random.Random(pi * 31 + eta)
    assert_checkers_match_brute_force(trace, ra, pi, healed=ra + pi)
    for _ in range(4):
        assert_checkers_match_brute_force(
            trace, rng.randrange(0, trace.horizon + 2), rng.randrange(0, 5),
            healed=rng.randrange(0, trace.horizon + 4),
        )


@pytest.mark.parametrize("pi", [2, 5])
def test_starved_delivery_traces_agree_with_brute_force(pi):
    """Blackout (withholding) runs: nothing is delivered for π rounds,
    decisions stall, then heal — the healing checker and its brute-force
    recomputation must agree on the recovery point."""
    config = blackout_scenario("resilient", eta=4, pi=pi, n=10)
    trace = run_tob(config)
    ra = config.meta["ra"]
    assert_checkers_match_brute_force(trace, ra, pi, healed=ra + pi)
    # The healing verdict itself (not just agreement): the resilient
    # protocol recovers after the blackout ends.
    assert check_healing(trace, last_async_round=ra + pi).ok


# ----------------------------------------------------------------------
# Synthetic randomized traces (planted forks, empty-log tips)
# ----------------------------------------------------------------------
def random_trace(rng: random.Random, n: int = 6, rounds: int = 16) -> Trace:
    tree = BlockTree([genesis_block()])
    tips = [None, genesis_block().block_id]
    for i in range(rng.randrange(4, 14)):
        parent = rng.choice(tips[1:])  # any existing block, forks included
        block = Block(parent=parent, proposer=rng.randrange(n), view=i + 1, salt=rng.randrange(4))
        tree.add(block)
        tips.append(block.block_id)
    trace = Trace(n=n, tree=tree)
    for r in range(rounds):
        awake = frozenset(pid for pid in range(n) if rng.random() < 0.8) or frozenset({0})
        byz = frozenset(pid for pid in awake if rng.random() < 0.2)
        trace.rounds.append(
            RoundRecord(
                round=r,
                awake=awake,
                honest=awake - byz,
                byzantine=byz,
                asynchronous=rng.random() < 0.3,
                votes_sent=0,
                proposes_sent=0,
                other_sent=0,
            )
        )
    for _ in range(rng.randrange(0, 12)):
        trace.decisions.append(
            DecisionEvent(
                pid=rng.randrange(n),
                round=rng.randrange(rounds),
                view=rng.randrange(1, 8),
                tip=rng.choice(tips),
            )
        )
    trace.decisions.sort(key=lambda d: (d.round, d.pid))
    return trace


@pytest.mark.parametrize("seed", range(20))
def test_synthetic_random_traces_agree_with_brute_force(seed):
    rng = random.Random(1000 + seed)
    trace = random_trace(rng)
    for _ in range(8):
        assert_checkers_match_brute_force(
            trace,
            ra=rng.randrange(0, trace.horizon + 2),
            pi=rng.randrange(0, 6),
            healed=rng.randrange(0, trace.horizon + 4),
        )
