"""ASCII timeline rendering."""

import pytest

from repro.analysis.viz import render_depth_curve, render_timeline
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.network import WindowedAsynchrony
from repro.sleepy.schedule import SpikeSchedule
from repro.sleepy.trace import Trace


def sample_trace():
    return run_tob(
        TOBRunConfig(
            n=10,
            rounds=16,
            protocol="resilient",
            eta=3,
            schedule=SpikeSchedule(10, drop_fraction=0.5, start=6, duration=4),
            network=WindowedAsynchrony(ra=11, pi=2),
        )
    )


def test_timeline_marks_phases_and_decisions():
    text = render_timeline(sample_trace())
    lines = text.splitlines()
    assert len(lines) == 17  # header + 16 rounds
    assert "ASYNC" in text and "sync" in text
    assert "*" in text
    # The spike halves the participation bar.
    full = next(line for line in lines if line.strip().startswith("0 "))
    dipped = next(line for line in lines if line.strip().startswith("7 "))
    assert dipped.count("█") < full.count("█")


def test_timeline_sampling():
    text = render_timeline(sample_trace(), every=4)
    assert len(text.splitlines()) == 1 + 4
    with pytest.raises(ValueError):
        render_timeline(sample_trace(), every=0)


def test_depth_curve_monotone_blocks():
    curve = render_depth_curve(sample_trace())
    assert "decided depth" in curve
    body = curve.splitlines()[1]
    assert len(body) == 16
    levels = "▁▂▃▄▅▆▇█"
    ranks = [levels.index(c) for c in body]
    assert ranks == sorted(ranks)


def test_depth_curve_empty_trace():
    assert "empty" in render_depth_curve(Trace(n=1))
