"""Reorg metrics: detection and depth accounting."""

from repro.analysis.metrics import max_reorg_depth, reorg_events
from repro.chain.block import genesis_block
from repro.chain.tree import BlockTree
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.trace import DecisionEvent, Trace
from repro.workloads import split_vote_attack_scenario

from tests.conftest import extend


def test_safe_runs_have_no_reorgs():
    trace = run_tob(TOBRunConfig(n=8, rounds=20, protocol="resilient", eta=2))
    assert reorg_events(trace) == []
    assert max_reorg_depth(trace) == 0


def test_attacked_mmr_shows_reorgs():
    trace = run_tob(split_vote_attack_scenario("mmr", eta=0, pi=1, n=20))
    events = reorg_events(trace)
    assert events
    assert max_reorg_depth(trace) >= 1
    # Reorgs happen when synchrony resumes and the forked halves re-converge.
    assert all(event.round >= 11 for event in events)


def test_reorg_depth_is_distance_to_fork_point():
    tree = BlockTree([genesis_block()])
    main = extend(tree, genesis_block().block_id, 4, salt=0)
    fork = extend(tree, main[1].block_id, 1, salt=9)
    trace = Trace(n=2, tree=tree)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=main[3].block_id),  # depth 5
        DecisionEvent(pid=0, round=5, view=2, tip=fork[0].block_id),  # forks at depth 3
    ]
    (event,) = reorg_events(trace)
    assert event.pid == 0
    assert event.depth == 2  # abandoned blocks main[2], main[3]
    assert event.old_tip == main[3].block_id
    assert event.new_tip == fork[0].block_id


def test_extension_decisions_are_not_reorgs():
    tree = BlockTree([genesis_block()])
    main = extend(tree, genesis_block().block_id, 3)
    trace = Trace(n=1, tree=tree)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=main[0].block_id),
        DecisionEvent(pid=0, round=5, view=2, tip=main[2].block_id),
    ]
    assert reorg_events(trace) == []


def test_reorgs_tracked_per_process():
    tree = BlockTree([genesis_block()])
    left = extend(tree, genesis_block().block_id, 1, salt=1)
    right = extend(tree, genesis_block().block_id, 1, salt=2)
    trace = Trace(n=2, tree=tree)
    trace.decisions = [
        DecisionEvent(pid=0, round=3, view=1, tip=left[0].block_id),
        DecisionEvent(pid=1, round=3, view=1, tip=right[0].block_id),  # different pid: no reorg
        DecisionEvent(pid=1, round=5, view=2, tip=left[0].block_id),  # pid 1 switches: reorg
    ]
    events = reorg_events(trace)
    assert len(events) == 1 and events[0].pid == 1 and events[0].depth == 1
