"""Assumption validators: Equations 1–5 on hand-built traces."""

from fractions import Fraction

import pytest

from repro.analysis.assumptions import (
    check_all_synchrony_assumptions,
    check_asynchrony_conditions,
    check_churn,
    check_eta_sleepiness,
    check_failure_ratio,
    check_reduced_failure_ratio,
)
from repro.sleepy.trace import RoundRecord, Trace

THIRD = Fraction(1, 3)


def build_trace(rows: list[tuple[set[int], set[int]]]) -> Trace:
    """Rows of (honest, byzantine) per round."""
    trace = Trace(n=16)
    for r, (honest, byz) in enumerate(rows):
        trace.rounds.append(
            RoundRecord(
                round=r,
                awake=frozenset(honest | byz),
                honest=frozenset(honest),
                byzantine=frozenset(byz),
                asynchronous=False,
                votes_sent=0,
                proposes_sent=0,
                other_sent=0,
            )
        )
    return trace


def test_failure_ratio_strictness():
    # 9 awake: 2 byz ok (2 < 3), 3 byz violates (3 < 3 fails).
    ok = build_trace([(set(range(7)), {14, 15})])
    assert check_failure_ratio(ok, THIRD).ok
    bad = build_trace([(set(range(6)), {13, 14, 15})])
    report = check_failure_ratio(bad, THIRD)
    assert not report.ok
    assert report.failures[0].round == 0
    assert "failure-ratio" in report.failures[0].assumption


def test_reduced_failure_ratio_uses_beta_tilde():
    # β = 1/3, γ = 1/5 ⇒ β̃ = 1/5: with 10 awake, 2 byz violates (2 < 2 fails).
    trace = build_trace([(set(range(8)), {14, 15})])
    assert check_failure_ratio(trace, THIRD).ok
    assert not check_reduced_failure_ratio(trace, THIRD, Fraction(1, 5)).ok
    # 1 byz of 10 is fine (1 < 2).
    trace2 = build_trace([(set(range(9)), {15})])
    assert check_reduced_failure_ratio(trace2, THIRD, Fraction(1, 5)).ok


def test_churn_bound():
    # η = 2, γ = 1/4.  H_{0..1} = {0..7}; at round 2 two processes sleep:
    # 2 ≤ 0.25·8 holds.  Three sleeping violates.
    rows_ok = [(set(range(8)), set()), (set(range(8)), set()), (set(range(2, 8)), set())]
    assert check_churn(build_trace(rows_ok), eta=2, gamma=Fraction(1, 4)).ok
    rows_bad = [(set(range(8)), set()), (set(range(8)), set()), (set(range(3, 8)), set())]
    report = check_churn(build_trace(rows_bad), eta=2, gamma=Fraction(1, 4))
    assert not report.ok and report.failures[0].round == 2


def test_churn_ignores_empty_history():
    trace = build_trace([(set(range(4)), set())])
    assert check_churn(trace, eta=2, gamma=Fraction(0)).ok


def test_eta_sleepiness():
    # |H_r| > (2/3)|O_{r-η,r}|.  With η=1: round 1 has H={0..5} (6) and
    # O_{0,1} = {0..8} (9): 6 > 6 fails.
    rows = [(set(range(9)), set()), (set(range(6)), set())]
    report = check_eta_sleepiness(build_trace(rows), eta=1, beta=THIRD)
    assert not report.ok
    # With 7 honest at round 1: 7 > 6 holds.
    rows_ok = [(set(range(9)), set()), (set(range(7)), set())]
    assert check_eta_sleepiness(build_trace(rows_ok), eta=1, beta=THIRD).ok


def test_asynchrony_conditions_eq5():
    # H_ra must be contained in H_{ra+1}.
    rows = [(set(range(6)), set()), (set(range(1, 6)), set()), (set(range(6)), set())]
    report = check_asynchrony_conditions(build_trace(rows), ra=0, pi=1, eta=2, beta=THIRD)
    assert any(f.assumption == "eq5" for f in report.failures)


def test_asynchrony_conditions_eq4():
    # Corruption eats into H_ra: survivors must still beat (1-β)|O_{r-η,r}|.
    rows = [
        (set(range(9)), set()),  # ra = 0: H_ra = {0..8}
        ({3, 4, 5, 6, 7, 8}, {0, 1, 2}),  # round 1: three of them corrupted
    ]
    # |H_ra \ B_1| = 6 vs (2/3)·|O_{-1..1}| = (2/3)·9 = 6 → 6 > 6 fails.
    trace = build_trace(rows)
    report = check_asynchrony_conditions(trace, ra=0, pi=1, eta=2, beta=THIRD)
    assert any(f.assumption == "eq4" for f in report.failures)


def test_asynchrony_conditions_pass_on_clean_window():
    rows = [(set(range(12)), set())] * 6
    report = check_asynchrony_conditions(build_trace(rows), ra=1, pi=2, eta=3, beta=THIRD)
    assert report.ok


def test_asynchrony_conditions_require_executed_ra():
    trace = build_trace([(set(range(4)), set())])
    with pytest.raises(ValueError, match="horizon"):
        check_asynchrony_conditions(trace, ra=5, pi=1, eta=1, beta=THIRD)


def test_bundle_runs_all_three():
    rows = [(set(range(12)), set())] * 4
    reports = check_all_synchrony_assumptions(
        build_trace(rows), eta=2, beta=THIRD, gamma=Fraction(1, 10)
    )
    assert [r.name for r in reports] == ["churn", "failure-ratio", "eta-sleepiness"]
    assert all(r.ok for r in reports)
