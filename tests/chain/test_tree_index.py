"""The indexed chain core vs naive reference recomputations.

The binary-lifting ancestor index and the incremental
:class:`~repro.chain.tally.PrefixTally` are pure optimisations: every
query must equal what a from-scratch parent walk / recount would
produce, on any tree shape and any vote churn.  These property tests
build randomized trees (deep chains, wide forks, mixed) and confront
the indexed queries with literal reference implementations.
"""

import random
from fractions import Fraction

import pytest

from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.tally import PrefixTally
from repro.chain.tree import BlockTree, UnknownBlockError
from repro.core.expiration import LatestVoteStore
from repro.protocols.graded_agreement import tally_votes


# ----------------------------------------------------------------------
# Reference implementations (deliberately naive)
# ----------------------------------------------------------------------
def naive_ancestor_at_depth(tree, tip, depth):
    node, current = tip, tree.depth(tip)
    while current > depth:
        node = tree.get(node).parent
        current -= 1
    return node


def naive_is_prefix(tree, a, b):
    if tree.depth(a) > tree.depth(b):
        return False
    return naive_ancestor_at_depth(tree, b, tree.depth(a)) == a


def naive_common_prefix(tree, tips):
    result, first = GENESIS_TIP, True
    for tip in tips:
        if first:
            result, first = tip, False
            continue
        depth = min(tree.depth(result), tree.depth(tip))
        a = naive_ancestor_at_depth(tree, result, depth)
        b = naive_ancestor_at_depth(tree, tip, depth)
        while a != b:
            a, b = tree.get(a).parent, tree.get(b).parent
        result = a
    return result


def naive_tips(tree, insertion_order):
    return tuple(bid for bid in insertion_order if not tree.children(bid))


def naive_prefix_counts(tree, votes):
    counts = {}
    for tip in votes.values():
        node = tip
        while node is not GENESIS_TIP:
            counts[node] = counts.get(node, 0) + 1
            node = tree.get(node).parent
        counts[GENESIS_TIP] = counts.get(GENESIS_TIP, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Randomized tree shapes
# ----------------------------------------------------------------------
def build_tree(rng, blocks, shape):
    """A seeded random tree; returns (tree, block ids in insertion order)."""
    tree = BlockTree([genesis_block()])
    ids = [genesis_block().block_id]
    for i in range(blocks):
        if shape == "deep":  # one long chain with rare shallow stubs
            parent = ids[-1] if rng.random() < 0.95 else rng.choice(ids)
        elif shape == "wide":  # everything forks near the root
            parent = rng.choice(ids[: max(1, len(ids) // 8)] + [None])
        else:  # mixed: uniform parents, occasional root forks
            parent = rng.choice(ids + [None])
        block = Block(parent=parent, proposer=i % 5, view=i + 1, salt=rng.randrange(1 << 30))
        tree.add(block)
        ids.append(block.block_id)
    return tree, ids


@pytest.mark.parametrize("shape", ["deep", "wide", "mixed"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_indexed_ancestry_queries_match_naive_walks(shape, seed):
    rng = random.Random(seed)
    tree, ids = build_tree(rng, 150, shape)
    nodes = ids + [GENESIS_TIP]
    for _ in range(400):
        tip = rng.choice(nodes)
        depth = rng.randrange(tree.depth(tip) + 1)
        assert tree.ancestor_at_depth(tip, depth) == naive_ancestor_at_depth(tree, tip, depth)
        a, b = rng.choice(nodes), rng.choice(nodes)
        assert tree.is_prefix(a, b) == naive_is_prefix(tree, a, b)
        assert tree.compatible(a, b) == (
            naive_is_prefix(tree, a, b) or naive_is_prefix(tree, b, a)
        )
        group = [rng.choice(nodes) for _ in range(rng.randrange(2, 5))]
        assert tree.common_prefix(group) == naive_common_prefix(tree, group)


@pytest.mark.parametrize("shape", ["deep", "wide", "mixed"])
def test_tips_match_full_scan_in_insertion_order(shape):
    rng = random.Random(7)
    tree, ids = build_tree(rng, 120, shape)
    assert tree.tips() == naive_tips(tree, ids)


def test_deep_chain_boundary_depths():
    """Power-of-two depths exercise every skip-table boundary."""
    tree = BlockTree([genesis_block()])
    chain = [genesis_block().block_id]
    parent = chain[0]
    for i in range(130):
        block = Block(parent=parent, proposer=0, view=i + 1)
        tree.add(block)
        chain.append(block.block_id)
        parent = block.block_id
    tip = chain[-1]
    assert tree.depth(tip) == 131
    for depth in [1, 2, 3, 31, 32, 33, 63, 64, 65, 127, 128, 129, 130, 131]:
        assert tree.ancestor_at_depth(tip, depth) == chain[depth - 1]
    assert tree.ancestor_at_depth(tip, 0) is GENESIS_TIP
    with pytest.raises(ValueError):
        tree.ancestor_at_depth(tip, 132)


def test_lca_of_root_level_forks():
    """Forks whose only common prefix is the empty log (the regression
    that requires guarding shrinking skip tables during LCA descent)."""
    tree = BlockTree()
    tips = []
    for salt in (1, 2):
        parent = None
        for i in range(5):
            block = Block(parent=parent, proposer=0, view=i + 1, salt=salt)
            tree.add(block)
            parent = block.block_id
        tips.append(parent)
    assert tree.common_prefix(tips) is GENESIS_TIP
    assert tree.conflict(tips[0], tips[1])


# ----------------------------------------------------------------------
# PrefixTally vs from-scratch recounts under vote churn
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", ["deep", "wide", "mixed"])
@pytest.mark.parametrize("seed", [0, 1])
def test_prefix_tally_counts_and_grades_under_churn(shape, seed):
    rng = random.Random(seed)
    tree, ids = build_tree(rng, 100, shape)
    nodes = ids + [GENESIS_TIP]
    tally = PrefixTally(tree)
    votes = {}
    betas = [Fraction(1, 3), Fraction(1, 4), Fraction(1, 2)]
    for step in range(300):
        sender = rng.randrange(20)
        action = rng.random()
        if action < 0.15 and sender in votes:
            del votes[sender]
            tally.remove_vote(sender)
        else:
            tip = rng.choice(nodes)
            votes[sender] = tip
            tally.set_vote(sender, tip)
        if step % 20 == 0:
            counts = naive_prefix_counts(tree, votes)
            for node in rng.sample(nodes, 25):
                assert tally.count(node) == counts.get(node, 0)
            beta = rng.choice(betas)
            assert tally.grade(beta) == tally_votes(tree, votes, beta)


def test_set_votes_diff_equals_fresh_build():
    rng = random.Random(3)
    tree, ids = build_tree(rng, 80, "mixed")
    nodes = ids + [GENESIS_TIP]
    tally = PrefixTally(tree)
    for _ in range(20):
        target = {pid: rng.choice(nodes) for pid in rng.sample(range(30), rng.randrange(1, 25))}
        tally.set_votes(target)
        assert dict(tally.votes) == target
        assert tally.grade() == PrefixTally(tree, target).grade()


def test_tally_tracks_tree_growth():
    """A vote moved onto a block inserted after the tally was built."""
    tree = BlockTree([genesis_block()])
    tally = PrefixTally(tree, {0: genesis_block().block_id})
    block = Block(parent=genesis_block().block_id, proposer=0, view=1)
    tree.add(block)  # block insertion needs no tally maintenance
    assert tally.count(block.block_id) == 0
    tally.move_vote(0, block.block_id)
    assert tally.count(block.block_id) == 1
    assert tally.count(genesis_block().block_id) == 1
    assert tally.count(GENESIS_TIP) == 1


def test_tally_rejects_unknown_tips_and_bad_transitions():
    tree = BlockTree([genesis_block()])
    tally = PrefixTally(tree)
    with pytest.raises(UnknownBlockError):
        tally.set_vote(0, "ab" * 32)
    with pytest.raises(UnknownBlockError):
        tally.count("ab" * 32)
    tally.add_vote(0, GENESIS_TIP)
    with pytest.raises(ValueError):
        tally.add_vote(0, GENESIS_TIP)  # already tallied
    with pytest.raises(ValueError):
        tally.move_vote(1, GENESIS_TIP)  # nothing to move
    with pytest.raises(ValueError):
        tally.remove_vote(1)  # nothing to remove
    tally.remove_vote(0)
    assert len(tally) == 0
    assert tally.grade().m == 0


def test_grades_after_equivocator_discard_churn():
    """The protocol feed: LatestVoteStore windows (equivocators dropped,
    sleep/wake churn) rolled into one persistent tally per receiver."""
    rng = random.Random(11)
    tree, ids = build_tree(rng, 60, "mixed")
    nodes = ids + [GENESIS_TIP]
    store = LatestVoteStore()
    tally = PrefixTally(tree)
    eta = 3
    for round_number in range(40):
        for sender in range(12):
            if rng.random() < 0.6:  # awake this round
                store.record(sender, round_number, rng.choice(nodes))
                if rng.random() < 0.1:  # equivocate: a second, different vote
                    store.record(sender, round_number, rng.choice(nodes))
        lo = max(0, round_number - eta)
        window = store.latest(lo, round_number)
        tally.set_votes(window)
        assert tally.grade() == tally_votes(tree, window)
