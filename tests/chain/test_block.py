"""Blocks: identity, immutability, genesis."""

import pytest

from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.transactions import Transaction


def test_block_id_is_deterministic():
    a = Block(parent=None, proposer=1, view=2)
    b = Block(parent=None, proposer=1, view=2)
    assert a.block_id == b.block_id


def test_block_id_changes_with_every_field(genesis):
    base = Block(parent=None, proposer=1, view=2)
    assert Block(parent=genesis.block_id, proposer=1, view=2).block_id != base.block_id
    assert Block(parent=None, proposer=2, view=2).block_id != base.block_id
    assert Block(parent=None, proposer=1, view=3).block_id != base.block_id
    assert Block(parent=None, proposer=1, view=2, salt=1).block_id != base.block_id
    tx = Transaction.create(0, 0)
    assert Block(parent=None, proposer=1, view=2, payload=(tx,)).block_id != base.block_id


def test_block_rejects_forged_id():
    with pytest.raises(ValueError, match="block_id"):
        Block(parent=None, proposer=1, view=2, block_id="00" * 32)


def test_block_accepts_its_own_id_explicitly():
    a = Block(parent=None, proposer=1, view=2)
    b = Block(parent=None, proposer=1, view=2, block_id=a.block_id)
    assert a == b


def test_block_is_frozen():
    block = Block(parent=None, proposer=1, view=2)
    with pytest.raises(AttributeError):
        block.view = 3  # type: ignore[misc]


def test_genesis_block_is_canonical():
    assert genesis_block() == genesis_block()
    assert genesis_block().parent is GENESIS_TIP
    assert genesis_block().proposer == -1
    assert genesis_block().view == 0
    assert genesis_block().payload == ()


def test_salt_distinguishes_siblings(genesis):
    left = Block(parent=genesis.block_id, proposer=3, view=1, salt=1)
    right = Block(parent=genesis.block_id, proposer=3, view=1, salt=2)
    assert left.block_id != right.block_id
