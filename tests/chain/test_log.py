"""Log value object: chain validation and Definition 1 relations."""

import pytest

from repro.chain.block import Block, genesis_block
from repro.chain.log import Log
from repro.chain.transactions import Transaction


def _chain(length: int, salt: int = 0) -> list[Block]:
    blocks = [genesis_block()]
    for i in range(length):
        blocks.append(Block(parent=blocks[-1].block_id, proposer=0, view=i + 1, salt=salt))
    return blocks


def test_empty_log():
    log = Log(())
    assert len(log) == 0
    assert log.tip is None
    assert log.transactions() == ()


def test_log_validates_chain_structure():
    blocks = _chain(2)
    Log(tuple(blocks))  # valid
    with pytest.raises(ValueError, match="chain"):
        Log((blocks[0], blocks[2]))  # skipped a link
    with pytest.raises(ValueError, match="chain"):
        Log((blocks[1],))  # first block is not a root


def test_prefix_relations():
    blocks = _chain(3)
    short = Log(tuple(blocks[:2]))
    long = Log(tuple(blocks))
    assert short.is_prefix_of(long)
    assert long.extends(short)
    assert not long.is_prefix_of(short)
    assert short.is_prefix_of(short)
    assert Log(()).is_prefix_of(short)


def test_conflicting_logs():
    left = Log(tuple(_chain(2, salt=1)))
    right = Log(tuple(_chain(2, salt=2)))
    # Both share the genesis prefix but fork immediately after.
    assert left.conflicts(right)
    assert not left.compatible(right)
    assert left.compatible(Log(tuple(left.blocks[:1])))


def test_log_iteration_and_indexing():
    blocks = _chain(2)
    log = Log(tuple(blocks))
    assert list(log) == blocks
    assert log[0] == blocks[0]
    assert log[-1] == blocks[-1]
    assert log.tip == blocks[-1].block_id


def test_log_transactions_in_order():
    tx1, tx2 = Transaction.create(0, 0), Transaction.create(0, 1)
    g = genesis_block()
    b1 = Block(parent=g.block_id, proposer=0, view=1, payload=(tx1,))
    b2 = Block(parent=b1.block_id, proposer=0, view=2, payload=(tx2,))
    assert Log((g, b1, b2)).transactions() == (tx1, tx2)
