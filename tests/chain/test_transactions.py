"""Transactions, the validity predicate, and the mempool."""

from repro.chain.transactions import Mempool, Transaction, is_valid_transaction


def test_created_transactions_are_valid():
    tx = Transaction.create(3, 7, b"payload")
    assert is_valid_transaction(tx)


def test_tampered_transactions_are_invalid():
    tx = Transaction.create(3, 7, b"payload")
    forged = Transaction(sender=3, nonce=8, payload=b"payload", checksum=tx.checksum)
    assert not is_valid_transaction(forged)
    forged_payload = Transaction(sender=3, nonce=7, payload=b"other", checksum=tx.checksum)
    assert not is_valid_transaction(forged_payload)


def test_tx_id_unique_per_content():
    assert Transaction.create(0, 0).tx_id != Transaction.create(0, 1).tx_id
    assert Transaction.create(0, 0).tx_id == Transaction.create(0, 0).tx_id


def test_mempool_rejects_invalid_and_duplicates():
    pool = Mempool()
    tx = Transaction.create(0, 0)
    assert pool.add(tx)
    assert not pool.add(tx)  # duplicate
    bad = Transaction(sender=0, nonce=1, payload=b"", checksum="nope")
    assert not pool.add(bad)
    assert len(pool) == 1


def test_mempool_take_respects_limit_order_and_exclusions():
    pool = Mempool()
    txs = [Transaction.create(0, i) for i in range(5)]
    for tx in txs:
        pool.add(tx)
    assert pool.take(3) == tuple(txs[:3])
    taken = pool.take(10, exclude=frozenset({txs[0].tx_id, txs[2].tx_id}))
    assert taken == (txs[1], txs[3], txs[4])
    # take() does not consume.
    assert len(pool) == 5


def test_mempool_mark_included_drops():
    pool = Mempool()
    txs = [Transaction.create(0, i) for i in range(3)]
    for tx in txs:
        pool.add(tx)
    pool.mark_included(frozenset({txs[1].tx_id}))
    assert pool.pending_ids() == {txs[0].tx_id, txs[2].tx_id}


def test_mempool_capacity_sheds_and_counts():
    pool = Mempool(capacity=2)
    assert pool.add(Transaction.create(0, 0))
    assert pool.add(Transaction.create(0, 1))
    overflow = Transaction.create(0, 2)
    assert not pool.add(overflow)  # full: shed, never queued silently
    assert pool.shed_count == 1
    assert pool.admitted_count == 2
    assert len(pool) == 2
    # Invalid and duplicate rejections are not "shed" — only valid,
    # novel transactions turned away by backpressure count.
    assert not pool.add(Transaction.create(0, 0))
    bad = Transaction(sender=0, nonce=9, payload=b"", checksum="nope")
    assert not pool.add(bad)
    assert pool.shed_count == 1
    # Inclusion frees capacity; the next submission is admitted again.
    pool.mark_included(frozenset({Transaction.create(0, 0).tx_id}))
    assert pool.add(overflow)
    assert pool.admitted_count == 3


def test_mempool_capacity_validation_and_default_unbounded():
    import pytest

    with pytest.raises(ValueError):
        Mempool(capacity=0)
    pool = Mempool()
    for i in range(100):
        assert pool.add(Transaction.create(1, i))
    assert pool.shed_count == 0
