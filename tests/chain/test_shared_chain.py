"""Shared-chain views vs private trees (randomized equivalence oracle).

A :class:`~repro.chain.shared.ChainView` is a pure representation
change: one receiver's visibility-filtered lens over the run's interned
canonical tree must answer every query *exactly* as a private
:class:`~repro.chain.tree.BlockTree` holding the same accepted blocks
would.  These tests drive a view and a private tree through identical
randomized delivery sequences — out-of-order arrival, forks,
re-delivery, orphan buffering with quota eviction — and confront the
full query surface after every step.
"""

import random

import pytest

from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.shared import ChainView, SharedChain
from repro.chain.store import BlockBuffer
from repro.chain.tree import BlockTree, MissingParentError, UnknownBlockError

# ----------------------------------------------------------------------
# Randomized block pools
# ----------------------------------------------------------------------


def make_pool(rng: random.Random, size: int) -> list[Block]:
    """A random block DAG over genesis: chains, forks, sibling salts."""
    blocks: list[Block] = []
    parents: list[str | None] = [genesis_block().block_id]
    for i in range(size):
        parent = rng.choice(parents[-8:] if rng.random() < 0.7 else parents)
        block = Block(
            parent=parent,
            proposer=rng.randrange(8),
            view=i + 1,
            salt=rng.randrange(3),
        )
        blocks.append(block)
        parents.append(block.block_id)
    return blocks


def assert_same_surface(view: ChainView, tree: BlockTree, rng: random.Random) -> None:
    """The whole BlockTree query surface must agree between the pair."""
    assert len(view) == len(tree)
    assert view.tips() == tree.tips()
    ids = list(tree.tips()) or [GENESIS_TIP]
    sample = [GENESIS_TIP] + [rng.choice(ids) for _ in range(min(6, len(ids)))]
    for tip in sample:
        assert (tip in view) == (tip in tree)
        assert view.depth(tip) == tree.depth(tip)
        assert view.children(tip) == tree.children(tip)
        assert view.path(tip) == tree.path(tip)
        assert view.payload_ids(tip) == tree.payload_ids(tip)
        if tip is not GENESIS_TIP:
            assert view.parent(tip) == tree.parent(tip)
            assert view.get(tip) == tree.get(tip)
    for a in sample:
        for b in sample:
            assert view.is_prefix(a, b) == tree.is_prefix(a, b)
            assert view.conflict(a, b) == tree.conflict(a, b)
    assert view.common_prefix(sample) == tree.common_prefix(sample)
    assert view.longest(sample) == tree.longest(sample)
    assert view.log(view.longest(sample)) == tree.log(tree.longest(sample))


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_view_matches_private_tree_under_random_delivery(seed):
    """Identical offers through identical buffers -> identical answers.

    Both sides sit behind a small-quota :class:`BlockBuffer`, so the
    sequence exercises orphan buffering, cascaded insertion, vouch
    accounting, and quota eviction on the view exactly as on the tree.
    """
    rng = random.Random(seed)
    pool = make_pool(rng, 80)
    # Chaff whose parents never get delivered keeps eviction pressure on.
    chaff = [
        Block(parent=pool[rng.randrange(len(pool))].block_id, proposer=9, view=999 + i)
        for i in range(10)
    ]
    deliveries = pool + pool[:20] + chaff  # re-deliveries included
    rng.shuffle(deliveries)

    chain = SharedChain()
    view = chain.view()
    tree = BlockTree([genesis_block()])
    view_buffer = BlockBuffer(view, max_orphans_per_source=3)
    tree_buffer = BlockBuffer(tree, max_orphans_per_source=3)

    for step, block in enumerate(deliveries):
        source = rng.randrange(4)
        inserted_view = view_buffer.offer(block, source=source)
        inserted_tree = tree_buffer.offer(block, source=source)
        assert inserted_view == inserted_tree
        assert view_buffer.orphan_ids() == tree_buffer.orphan_ids()
        if step % 7 == 0:
            assert_same_surface(view, tree, rng)
    assert_same_surface(view, tree, rng)


@pytest.mark.parametrize("seed", range(4))
def test_independent_views_see_only_their_own_deliveries(seed):
    """n views over one chain == n private trees, each with its subset."""
    rng = random.Random(100 + seed)
    pool = make_pool(rng, 60)
    chain = SharedChain()
    pairs = []
    for _ in range(4):
        subset = [b for b in pool if rng.random() < 0.6]
        order = subset + subset[: len(subset) // 3]
        rng.shuffle(order)
        pairs.append((chain.view(), BlockTree([genesis_block()]), order))
    # Interleave the receivers round-robin so interning happens in a
    # different order than any single receiver's acceptance order.
    remaining = [list(order) for _, _, order in pairs]
    while any(remaining):
        for (view, tree, _), queue in zip(pairs, remaining):
            if not queue:
                continue
            block = queue.pop()
            if block.parent in tree:
                view.add(block)
                tree.add(block)
    for view, tree, _ in pairs:
        assert_same_surface(view, tree, rng)
    # The canonical tree interned the union, each block exactly once.
    accepted = set()
    for _, tree, _ in pairs:
        accepted.update(tree.tips())
    assert all(tip in chain.tree for tip in accepted)


def test_view_rejects_unknown_parents_and_blocks():
    chain = SharedChain()
    view_a = chain.view()
    view_b = chain.view()
    child = Block(parent=genesis_block().block_id, proposer=0, view=1)
    grandchild = Block(parent=child.block_id, proposer=0, view=2)
    view_a.add(child)
    view_a.add(grandchild)
    # view_b has not accepted `child`: the interned block stays invisible.
    assert child.block_id in view_a
    assert child.block_id not in view_b
    with pytest.raises(MissingParentError):
        view_b.add(grandchild)
    with pytest.raises(UnknownBlockError):
        view_b.depth(child.block_id)
    with pytest.raises(UnknownBlockError):
        view_b.is_prefix(child.block_id, GENESIS_TIP)
    # Accepting the parent heals the view without re-interning anything.
    size = len(chain.tree)
    view_b.add(child)
    view_b.add(grandchild)
    assert len(chain.tree) == size
    assert view_b.depth(grandchild.block_id) == view_a.depth(grandchild.block_id)


def test_watermark_compacts_in_order_acceptance():
    """A caught-up view holds no overflow set — O(1) steady memory."""
    rng = random.Random(42)
    chain = SharedChain()
    eager = chain.view()  # accepts everything immediately (intern order)
    laggard = chain.view()  # accepts in bursts, slightly out of order
    pool = make_pool(rng, 50)
    backlog: list[Block] = []
    for block in pool:
        if block.parent in eager:
            eager.add(block)
            backlog.append(block)
        if len(backlog) >= 10:
            for queued in backlog:
                laggard.add(queued)
            backlog.clear()
    for queued in backlog:
        laggard.add(queued)
    assert not eager._extra
    assert not laggard._extra
    assert len(laggard) == len(eager) == len(chain.tree)


def test_add_is_idempotent_and_indexes_every_insertion_path():
    chain = SharedChain()
    view = chain.view()
    block = Block(parent=genesis_block().block_id, proposer=1, view=1)
    assert view.add(block) == block.block_id
    count = len(view)
    assert view.add(block) == block.block_id  # idempotent, like BlockTree
    assert len(view) == count
    # Blocks added to the canonical tree directly (the simulator's trace
    # buffer path) are indexed too, and become addable to views.
    direct = Block(parent=block.block_id, proposer=2, view=2)
    chain.tree.add(direct)
    assert chain.index(direct.block_id) == len(chain.tree) - 1
    assert direct.block_id not in view
    view.add(direct)
    assert view.depth(direct.block_id) == chain.tree.depth(direct.block_id)
