"""Property-based tests: the prefix order on logs is a tree partial order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.tree import BlockTree


def build_random_tree(structure: list[int]) -> tuple[BlockTree, list]:
    """Build a tree where block ``i`` attaches under ``structure[i] % (i+1)``.

    Index 0 is the genesis block; ``structure[i] == 0`` attaches to the
    genesis, larger values attach to earlier random blocks — a standard
    recursive-tree encoding that covers chains, stars, and everything in
    between.
    """
    tree = BlockTree([genesis_block()])
    nodes = [genesis_block().block_id]
    for i, choice in enumerate(structure):
        parent = nodes[choice % len(nodes)]
        block = Block(parent=parent, proposer=0, view=i + 1, salt=i)
        tree.add(block)
        nodes.append(block.block_id)
    return tree, nodes


tree_structures = st.lists(st.integers(min_value=0, max_value=1_000), min_size=0, max_size=24)


@given(tree_structures)
@settings(max_examples=120)
def test_prefix_is_reflexive_and_rooted(structure):
    tree, nodes = build_random_tree(structure)
    for node in nodes + [GENESIS_TIP]:
        assert tree.is_prefix(node, node)
        assert tree.is_prefix(GENESIS_TIP, node)


@given(tree_structures, st.data())
@settings(max_examples=120)
def test_prefix_antisymmetry_and_transitivity(structure, data):
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    a = data.draw(st.sampled_from(universe))
    b = data.draw(st.sampled_from(universe))
    c = data.draw(st.sampled_from(universe))
    if tree.is_prefix(a, b) and tree.is_prefix(b, a):
        assert a == b
    if tree.is_prefix(a, b) and tree.is_prefix(b, c):
        assert tree.is_prefix(a, c)


@given(tree_structures, st.data())
@settings(max_examples=120)
def test_compatibility_matches_common_prefix(structure, data):
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    a = data.draw(st.sampled_from(universe))
    b = data.draw(st.sampled_from(universe))
    lcp = tree.common_prefix([a, b])
    # The common prefix is a prefix of both.
    assert tree.is_prefix(lcp, a)
    assert tree.is_prefix(lcp, b)
    # Logs are compatible iff their common prefix is one of them.
    assert tree.compatible(a, b) == (lcp in (a, b))


@given(tree_structures, st.data())
@settings(max_examples=120)
def test_depth_monotone_along_prefix(structure, data):
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]
    a = data.draw(st.sampled_from(universe))
    b = data.draw(st.sampled_from(universe))
    if tree.is_prefix(a, b):
        assert tree.depth(a) <= tree.depth(b)
        assert tree.ancestor_at_depth(b, tree.depth(a)) == a


@given(tree_structures)
@settings(max_examples=60)
def test_path_depth_agreement(structure):
    tree, nodes = build_random_tree(structure)
    for node in nodes:
        assert len(tree.path(node)) == tree.depth(node)
