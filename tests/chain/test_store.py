"""Orphan buffering: out-of-order block arrival."""

from repro.chain.block import Block
from repro.chain.store import BlockBuffer


def _chain_from(genesis, length):
    blocks = []
    parent = genesis.block_id
    for i in range(length):
        block = Block(parent=parent, proposer=0, view=i + 1)
        blocks.append(block)
        parent = block.block_id
    return blocks


def test_in_order_insertion(tree, genesis):
    buffer = BlockBuffer(tree)
    blocks = _chain_from(genesis, 3)
    for block in blocks:
        inserted = buffer.offer(block)
        assert inserted == [block.block_id]
    assert len(buffer) == 0


def test_orphans_wait_for_parent(tree, genesis):
    buffer = BlockBuffer(tree)
    b1, b2, b3 = _chain_from(genesis, 3)
    assert buffer.offer(b3) == []
    assert buffer.offer(b2) == []
    assert buffer.orphan_ids() == {b2.block_id, b3.block_id}
    # Parent arrival cascades the whole buffered suffix.
    inserted = buffer.offer(b1)
    assert set(inserted) == {b1.block_id, b2.block_id, b3.block_id}
    assert len(buffer) == 0
    assert b3.block_id in tree


def test_duplicate_offers_are_noops(tree, genesis):
    buffer = BlockBuffer(tree)
    (b1,) = _chain_from(genesis, 1)
    assert buffer.offer(b1) == [b1.block_id]
    assert buffer.offer(b1) == []
    b2 = Block(parent=b1.block_id, proposer=0, view=2)
    b3 = Block(parent=b2.block_id, proposer=0, view=3)
    assert buffer.offer(b3) == []
    assert buffer.offer(b3) == []  # buffered twice: still one orphan
    assert buffer.orphan_ids() == {b3.block_id}
    assert set(buffer.offer(b2)) == {b2.block_id, b3.block_id}


def test_forked_orphans_cascade_together(tree, genesis):
    buffer = BlockBuffer(tree)
    parent = Block(parent=genesis.block_id, proposer=0, view=1)
    left = Block(parent=parent.block_id, proposer=0, view=2, salt=1)
    right = Block(parent=parent.block_id, proposer=0, view=2, salt=2)
    buffer.offer(left)
    buffer.offer(right)
    inserted = buffer.offer(parent)
    assert set(inserted) == {parent.block_id, left.block_id, right.block_id}
