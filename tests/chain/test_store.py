"""Orphan buffering: out-of-order block arrival and bounded growth."""

import pytest

from repro.chain.block import Block
from repro.chain.store import DEFAULT_ORPHANS_PER_SOURCE, BlockBuffer


def _chain_from(genesis, length):
    blocks = []
    parent = genesis.block_id
    for i in range(length):
        block = Block(parent=parent, proposer=0, view=i + 1)
        blocks.append(block)
        parent = block.block_id
    return blocks


def test_in_order_insertion(tree, genesis):
    buffer = BlockBuffer(tree)
    blocks = _chain_from(genesis, 3)
    for block in blocks:
        inserted = buffer.offer(block)
        assert inserted == [block.block_id]
    assert len(buffer) == 0


def test_orphans_wait_for_parent(tree, genesis):
    buffer = BlockBuffer(tree)
    b1, b2, b3 = _chain_from(genesis, 3)
    assert buffer.offer(b3) == []
    assert buffer.offer(b2) == []
    assert buffer.orphan_ids() == {b2.block_id, b3.block_id}
    # Parent arrival cascades the whole buffered suffix.
    inserted = buffer.offer(b1)
    assert set(inserted) == {b1.block_id, b2.block_id, b3.block_id}
    assert len(buffer) == 0
    assert b3.block_id in tree


def test_duplicate_offers_are_noops(tree, genesis):
    buffer = BlockBuffer(tree)
    (b1,) = _chain_from(genesis, 1)
    assert buffer.offer(b1) == [b1.block_id]
    assert buffer.offer(b1) == []
    b2 = Block(parent=b1.block_id, proposer=0, view=2)
    b3 = Block(parent=b2.block_id, proposer=0, view=3)
    assert buffer.offer(b3) == []
    assert buffer.offer(b3) == []  # buffered twice: still one orphan
    assert buffer.orphan_ids() == {b3.block_id}
    assert set(buffer.offer(b2)) == {b2.block_id, b3.block_id}


def test_forked_orphans_cascade_together(tree, genesis):
    buffer = BlockBuffer(tree)
    parent = Block(parent=genesis.block_id, proposer=0, view=1)
    left = Block(parent=parent.block_id, proposer=0, view=2, salt=1)
    right = Block(parent=parent.block_id, proposer=0, view=2, salt=2)
    buffer.offer(left)
    buffer.offer(right)
    inserted = buffer.offer(parent)
    assert set(inserted) == {parent.block_id, left.block_id, right.block_id}


# ----------------------------------------------------------------------
# Bounded orphan growth (the adversarial-chaff regression)
# ----------------------------------------------------------------------
def _chaff(i):
    """A block claiming a parent that will never be delivered."""
    return Block(parent=f"{i:064x}", proposer=99, view=1, salt=i)


def test_orphan_buffer_is_bounded_under_adversarial_chaff(tree):
    """Blocks claiming never-delivered parents must not accumulate forever."""
    buffer = BlockBuffer(tree, max_orphans_per_source=8)
    for i in range(100):
        assert buffer.offer(_chaff(i), source=7) == []
    assert len(buffer) == 8
    # The survivors are the most recently buffered (insertion-ordered quota).
    assert buffer.orphan_ids() == {_chaff(i).block_id for i in range(92, 100)}


def test_default_quota_is_generous_and_enforced(tree):
    buffer = BlockBuffer(tree)
    for i in range(DEFAULT_ORPHANS_PER_SOURCE + 50):
        buffer.offer(_chaff(i), source=7)
    assert len(buffer) == DEFAULT_ORPHANS_PER_SOURCE


def test_chaff_from_one_source_cannot_evict_another_sources_orphan(tree, genesis):
    """The load-bearing property: flooding is charged to the flooder's
    quota, so an honest sender's out-of-order block survives any amount
    of Byzantine chaff from other identities."""
    buffer = BlockBuffer(tree, max_orphans_per_source=4)
    b1, b2 = _chain_from(genesis, 2)
    buffer.offer(b2, source=1)  # honest sender 1, parent still in flight
    for i in range(100):  # Byzantine sender 66 floods far past any quota
        buffer.offer(_chaff(i), source=66)
    assert b2.block_id in buffer.orphan_ids()
    assert len(buffer) == 5  # honest orphan + the flooder's own quota
    assert set(buffer.offer(b1, source=1)) == {b1.block_id, b2.block_id}
    assert b2.block_id in tree


def test_front_running_a_block_does_not_make_it_evictable(tree, genesis):
    """A Byzantine sender offering an honest block first (charging it to
    its own bucket) and then flooding must not evict it once the honest
    carrier's delivery adds its own vouch."""
    buffer = BlockBuffer(tree, max_orphans_per_source=4)
    b1, b2 = _chain_from(genesis, 2)
    buffer.offer(b2, source=66)  # Byzantine front-run: charged to 66
    buffer.offer(b2, source=1)  # honest carrier arrives: co-vouched
    for i in range(100):  # 66 floods far past its quota
        buffer.offer(_chaff(i), source=66)
    assert b2.block_id in buffer.orphan_ids()  # survives on sender 1's vouch
    assert len(buffer) == 5
    assert set(buffer.offer(b1, source=1)) == {b1.block_id, b2.block_id}


def test_eviction_sheds_only_the_flooders_backlog(tree, genesis):
    """Within one source the oldest orphan goes first, and honest
    cascade still works for everything under the quota."""
    buffer = BlockBuffer(tree, max_orphans_per_source=8)
    b1, b2, b3 = _chain_from(genesis, 3)
    buffer.offer(b3, source=1)
    buffer.offer(b2, source=1)
    for i in range(20):
        buffer.offer(_chaff(i), source=2)
    assert len(buffer) == 10  # sender 1's two + sender 2's quota of 8
    inserted = buffer.offer(b1, source=1)  # parent arrives: suffix cascades
    assert set(inserted) == {b1.block_id, b2.block_id, b3.block_id}
    assert b3.block_id in tree
    assert len(buffer) == 8  # only the chaff remains


def test_evicted_orphan_can_be_reoffered_once_its_parent_arrives(tree, genesis):
    buffer = BlockBuffer(tree, max_orphans_per_source=2)
    b1, b2 = _chain_from(genesis, 2)
    buffer.offer(b2, source=1)
    for i in range(4):
        buffer.offer(_chaff(i), source=1)  # same source: evicts b2, then its own
    assert b2.block_id not in buffer.orphan_ids()
    buffer.offer(b1, source=1)  # parent arrives; the evicted child is gone
    assert b1.block_id in tree and b2.block_id not in tree
    # Redelivery after eviction inserts normally.
    assert buffer.offer(b2, source=1) == [b2.block_id]


def test_unbounded_and_invalid_quotas(tree):
    unbounded = BlockBuffer(tree, max_orphans_per_source=None)
    for i in range(60):
        unbounded.offer(_chaff(i), source=7)
    assert len(unbounded) == 60
    with pytest.raises(ValueError):
        BlockBuffer(tree, max_orphans_per_source=0)
