"""Block tree: ancestry, prefixes, compatibility, payload memoisation."""

import pytest

from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.transactions import Transaction
from repro.chain.tree import MissingParentError, UnknownBlockError

from tests.conftest import extend, make_chain


def test_empty_log_is_root(tree):
    assert GENESIS_TIP in tree
    assert tree.depth(GENESIS_TIP) == 0
    assert tree.log(GENESIS_TIP).tip is None
    assert len(tree.log(GENESIS_TIP)) == 0


def test_depth_counts_blocks(tree):
    chain = make_chain(tree, 3)
    assert tree.depth(genesis_block().block_id) == 1
    assert tree.depth(chain[-1].block_id) == 4


def test_add_requires_known_parent(tree):
    orphan = Block(parent="ff" * 32, proposer=0, view=1)
    with pytest.raises(MissingParentError):
        tree.add(orphan)


def test_add_is_idempotent(tree, genesis):
    before = len(tree)
    tree.add(genesis)
    assert len(tree) == before


def test_unknown_block_queries_raise(tree):
    with pytest.raises(UnknownBlockError):
        tree.depth("ab" * 32)
    with pytest.raises(UnknownBlockError):
        tree.get("ab" * 32)
    with pytest.raises(UnknownBlockError):
        tree.payload_ids("ab" * 32)


def test_is_prefix_reflexive_and_rooted(tree):
    chain = make_chain(tree, 4)
    tip = chain[-1].block_id
    assert tree.is_prefix(tip, tip)
    assert tree.is_prefix(GENESIS_TIP, tip)
    assert not tree.is_prefix(tip, GENESIS_TIP)


def test_is_prefix_along_chain(tree):
    chain = make_chain(tree, 4)
    assert tree.is_prefix(chain[0].block_id, chain[3].block_id)
    assert tree.is_prefix(chain[2].block_id, chain[3].block_id)
    assert not tree.is_prefix(chain[3].block_id, chain[2].block_id)


def test_forks_conflict(tree, genesis):
    left = extend(tree, genesis.block_id, 2, salt=1)
    right = extend(tree, genesis.block_id, 2, salt=2)
    assert tree.conflict(left[-1].block_id, right[-1].block_id)
    assert tree.compatible(left[0].block_id, left[-1].block_id)
    # Both forks remain compatible with their common prefix.
    assert tree.compatible(genesis.block_id, left[-1].block_id)
    assert tree.compatible(genesis.block_id, right[-1].block_id)


def test_common_prefix_of_forks(tree, genesis):
    left = extend(tree, genesis.block_id, 3, salt=1)
    right = extend(tree, genesis.block_id, 1, salt=2)
    assert tree.common_prefix([left[-1].block_id, right[-1].block_id]) == genesis.block_id
    assert tree.common_prefix([left[-1].block_id, left[1].block_id]) == left[1].block_id
    assert tree.common_prefix([]) is GENESIS_TIP
    assert tree.common_prefix([left[-1].block_id]) == left[-1].block_id


def test_common_prefix_with_empty_log(tree, genesis):
    chain = make_chain(tree, 2)
    assert tree.common_prefix([chain[-1].block_id, GENESIS_TIP]) is GENESIS_TIP


def test_ancestor_at_depth(tree):
    chain = make_chain(tree, 5)
    tip = chain[-1].block_id
    assert tree.ancestor_at_depth(tip, 0) is GENESIS_TIP
    assert tree.ancestor_at_depth(tip, 1) == genesis_block().block_id
    assert tree.ancestor_at_depth(tip, 6) == tip
    with pytest.raises(ValueError):
        tree.ancestor_at_depth(tip, 7)
    with pytest.raises(ValueError):
        tree.ancestor_at_depth(tip, -1)


def test_path_and_log_roundtrip(tree):
    chain = make_chain(tree, 3)
    tip = chain[-1].block_id
    path = tree.path(tip)
    assert path[0] == genesis_block().block_id
    assert path[-1] == tip
    log = tree.log(tip)
    assert [b.block_id for b in log] == list(path)
    assert log.tip == tip


def test_children_and_tips(tree, genesis):
    left = extend(tree, genesis.block_id, 1, salt=1)
    right = extend(tree, genesis.block_id, 1, salt=2)
    assert set(tree.children(genesis.block_id)) == {left[0].block_id, right[0].block_id}
    assert set(tree.tips()) == {left[0].block_id, right[0].block_id}


def test_payload_ids_accumulate(tree, genesis):
    tx1 = Transaction.create(0, 0)
    tx2 = Transaction.create(0, 1)
    b1 = Block(parent=genesis.block_id, proposer=0, view=1, payload=(tx1,))
    tree.add(b1)
    b2 = Block(parent=b1.block_id, proposer=0, view=2, payload=(tx2,))
    tree.add(b2)
    assert tree.payload_ids(genesis.block_id) == frozenset()
    assert tree.payload_ids(b1.block_id) == {tx1.tx_id}
    assert tree.payload_ids(b2.block_id) == {tx1.tx_id, tx2.tx_id}


def test_longest_picks_deepest_with_deterministic_ties(tree, genesis):
    left = extend(tree, genesis.block_id, 2, salt=1)
    right = extend(tree, genesis.block_id, 2, salt=2)
    deepest = tree.longest([left[-1].block_id, right[-1].block_id, genesis.block_id])
    assert deepest == max(left[-1].block_id, right[-1].block_id)
    with pytest.raises(ValueError):
        tree.longest([])


def test_longest_includes_empty_log(tree):
    assert tree.longest([GENESIS_TIP]) is GENESIS_TIP
