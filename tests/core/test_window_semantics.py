"""White-box window semantics of the resilient process.

Pins the subtle interactions between the expiration window, block
availability, and Byzantine round-tag games that the coarser end-to-end
tests cannot isolate.
"""

import pytest

from repro.chain.block import Block, genesis_block
from repro.core.resilient_tob import ResilientTOBProcess
from repro.sleepy.messages import make_propose, make_vote


@pytest.fixture
def process(registry, verifier):
    return ResilientTOBProcess(0, registry.secret_key(0), verifier, eta=4)


def vote(registry, pid, round_number, tip):
    return make_vote(registry, registry.secret_key(pid), round_number, tip)


def propose(registry, pid, round_number, view, block):
    return make_propose(registry, registry.secret_key(pid), round_number, view, block)


def test_orphan_votes_count_once_the_block_arrives(registry, process):
    """A vote for a then-unknown block is retained and starts counting
    as soon as the block is learned — crucial during asynchrony, when
    votes and blocks may arrive in any order."""
    block = Block(parent=genesis_block().block_id, proposer=1, view=1)
    votes = [vote(registry, pid, 3, block.block_id) for pid in range(1, 4)]
    process.receive(3, votes)
    # Block unknown: the tally sees nothing.
    assert process._ga_output(3).m == 0
    process.receive(4, [propose(registry, 1, 4, 2, block)])
    output = process._ga_output(4)  # window [0, 4] still holds the votes
    assert output.m == 3
    assert output.has_grade1(block.block_id)


def test_window_excludes_expired_votes(registry, process):
    g = genesis_block().block_id
    process.receive(2, [vote(registry, 1, 2, g)])
    assert process._ga_output(6).m == 1  # window [2, 6]: included
    assert process._ga_output(7).m == 0  # window [3, 7]: expired


def test_latest_vote_supersedes_older_one(registry, process, tree, genesis):
    child = Block(parent=genesis.block_id, proposer=1, view=1)
    process.receive(2, [propose(registry, 1, 2, 1, child)])
    process.receive(3, [vote(registry, 1, 3, genesis.block_id)])
    process.receive(5, [vote(registry, 1, 5, child.block_id)])
    output = process._ga_output(6)
    assert output.m == 1
    assert output.has_grade1(child.block_id)  # only the round-5 vote counts


def test_backdated_votes_count_at_their_tagged_round(registry, process):
    """A Byzantine sender back-dating its tag concedes freshness: any
    later honest-tagged vote from it supersedes the back-dated one, and
    the back-dated tag expires earlier."""
    g = genesis_block().block_id
    process.receive(6, [vote(registry, 1, 2, g)])  # sent at 6, tagged 2
    assert process._ga_output(6).m == 1
    assert process._ga_output(7).m == 0  # expired by tag, not send time


def test_future_tagged_votes_invisible_until_reached(registry, process):
    g = genesis_block().block_id
    process.receive(3, [vote(registry, 1, 9, g)])
    assert process._ga_output(5).m == 0  # window [1, 5]: tag 9 is ahead
    assert process._ga_output(9).m == 1  # window [5, 9]: now visible


def test_vote_window_shape(process):
    assert process.vote_window(10) == (6, 10)
    assert process.vote_window(2) == (0, 2)  # clamped at round 0
