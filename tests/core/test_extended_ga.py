"""Extended graded agreement (Figure 3): unit semantics + Lemma 1 properties."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.ga_properties import check_clique_validity, check_ga_properties
from repro.chain.block import GENESIS_TIP
from repro.core.extended_ga import ExtendedGAInstance, InitialVote
from repro.protocols.graded_agreement import tally_votes

from tests.chain.test_properties import build_random_tree
from tests.conftest import extend

# ----------------------------------------------------------------------
# Unit semantics
# ----------------------------------------------------------------------


def test_empty_m0_reduces_to_figure2(tree, genesis):
    chain = extend(tree, genesis.block_id, 1)
    instance = ExtendedGAInstance(tree)
    votes = {pid: chain[0].block_id for pid in range(5)}
    for pid, tip in votes.items():
        instance.add_round_vote(pid, tip)
    assert instance.p0 == frozenset()
    assert instance.output() == tally_votes(tree, votes)


def test_fresh_votes_supersede_m0(tree, genesis):
    chain = extend(tree, genesis.block_id, 1)
    instance = ExtendedGAInstance(
        tree, [InitialVote(sender=0, round=2, tip=genesis.block_id)]
    )
    instance.add_round_vote(0, chain[0].block_id)
    assert instance.tallied_votes() == {0: chain[0].block_id}


def test_m0_used_when_sender_silent_in_round(tree, genesis):
    instance = ExtendedGAInstance(
        tree, [InitialVote(sender=0, round=2, tip=genesis.block_id)]
    )
    instance.add_round_vote(1, genesis.block_id)
    assert instance.tallied_votes() == {0: genesis.block_id, 1: genesis.block_id}
    assert instance.p0 == frozenset({0})


def test_m0_keeps_only_latest_round_per_sender(tree, genesis):
    chain = extend(tree, genesis.block_id, 1)
    instance = ExtendedGAInstance(
        tree,
        [
            InitialVote(sender=0, round=1, tip=genesis.block_id),
            InitialVote(sender=0, round=3, tip=chain[0].block_id),
            InitialVote(sender=0, round=2, tip=genesis.block_id),
        ],
    )
    assert instance.tallied_votes() == {0: chain[0].block_id}


def test_equivocation_inside_m0_discards_sender(tree, genesis):
    chain = extend(tree, genesis.block_id, 1)
    instance = ExtendedGAInstance(
        tree,
        [
            InitialVote(sender=0, round=3, tip=genesis.block_id),
            InitialVote(sender=0, round=3, tip=chain[0].block_id),
        ],
    )
    assert instance.tallied_votes() == {}
    # ... but the sender can still contribute a clean fresh vote.
    instance.add_round_vote(0, chain[0].block_id)
    assert instance.tallied_votes() == {0: chain[0].block_id}


def test_fresh_equivocation_discards_sender_and_their_m0(tree, genesis):
    """Figure 3: M₀ messages are dropped when the sender voted in round r —
    even if that fresh vote turns out to be an equivocation."""
    chain = extend(tree, genesis.block_id, 1)
    instance = ExtendedGAInstance(
        tree, [InitialVote(sender=0, round=2, tip=genesis.block_id)]
    )
    instance.add_round_vote(0, chain[0].block_id)
    instance.add_round_vote(0, genesis.block_id)
    assert instance.tallied_votes() == {}


def test_unknown_tips_excluded_from_tally(tree):
    instance = ExtendedGAInstance(tree, [InitialVote(sender=0, round=1, tip="ff" * 32)])
    instance.add_round_vote(1, "ee" * 32)
    assert instance.tallied_votes() == {}


def test_m0_equivocation_at_older_round_superseded_by_later_m0(tree, genesis):
    chain = extend(tree, genesis.block_id, 1)
    instance = ExtendedGAInstance(
        tree,
        [
            InitialVote(sender=0, round=2, tip=genesis.block_id),
            InitialVote(sender=0, round=2, tip=chain[0].block_id),  # equivocation at 2
            InitialVote(sender=0, round=4, tip=chain[0].block_id),  # clean later vote
        ],
    )
    assert instance.tallied_votes() == {0: chain[0].block_id}


# ----------------------------------------------------------------------
# Lemma 1: the five Definition 4 properties under synchrony
# ----------------------------------------------------------------------

tree_structures = st.lists(st.integers(min_value=0, max_value=1_000), min_size=0, max_size=10)


@given(tree_structures, st.data())
@settings(max_examples=150, deadline=None)
def test_lemma1_definition4_properties_hold_under_synchrony(structure, data):
    """Random extended-GA instances satisfy Definition 4 whenever
    |H_r| > 2/3·|O_r ∪ P₀| (the Lemma 1 assumption)."""
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]

    h = data.draw(st.integers(min_value=3, max_value=8), label="honest")
    extras = data.draw(st.integers(min_value=0, max_value=(h - 1) // 2), label="extras")
    byz = data.draw(st.integers(min_value=0, max_value=extras), label="byzantine")
    sleepers = extras - byz
    assume(3 * h > 2 * (h + extras))  # |H_r| > 2/3·|O_r ∪ P₀|

    honest_ids = list(range(h))
    byz_ids = list(range(h, h + byz))
    sleeper_ids = list(range(h + byz, h + extras))

    honest_inputs = {pid: data.draw(st.sampled_from(universe), label=f"input{pid}") for pid in honest_ids}
    # Byzantine fresh votes: multicast under synchrony, hence identical
    # for every receiver (equivocation would be discarded by everyone).
    byz_votes = {pid: data.draw(st.sampled_from(universe), label=f"byz{pid}") for pid in byz_ids}

    outputs = {}
    for receiver in honest_ids:
        m0 = []
        for sender in byz_ids + sleeper_ids:
            if data.draw(st.booleans(), label=f"m0has{receiver}:{sender}"):
                tip = data.draw(st.sampled_from(universe), label=f"m0tip{receiver}:{sender}")
                m0.append(InitialVote(sender=sender, round=0, tip=tip))
        instance = ExtendedGAInstance(tree, m0)
        for pid, tip in honest_inputs.items():
            instance.add_round_vote(pid, tip)
        for pid, tip in byz_votes.items():
            instance.add_round_vote(pid, tip)
        outputs[receiver] = instance.output()

    report = check_ga_properties(tree, honest_inputs, outputs)
    assert report.ok, report.failures


@given(tree_structures, st.data())
@settings(max_examples=150, deadline=None)
def test_lemma1_clique_validity_holds_even_under_asynchrony(structure, data):
    """Clique validity: with a clique H' voting extensions of Λ and
    |H'| > 2/3·|O_r ∪ P₀|, every clique member outputs (Λ, 1) no matter
    what the adversary delivers."""
    tree, nodes = build_random_tree(structure)
    universe = nodes + [GENESIS_TIP]

    lam = data.draw(st.sampled_from(universe), label="lambda")
    extensions = [tip for tip in universe if tree.is_prefix(lam, tip)]

    clique_size = data.draw(st.integers(min_value=3, max_value=8), label="clique")
    outsiders = data.draw(st.integers(min_value=0, max_value=(clique_size - 1) // 2), label="out")
    assume(3 * clique_size > 2 * (clique_size + outsiders))

    clique = list(range(clique_size))
    outsider_ids = list(range(clique_size, clique_size + outsiders))

    # Fresh round votes of clique members: extensions of Λ; a random
    # subset of the clique is awake in the send phase.
    senders = [pid for pid in clique if data.draw(st.booleans(), label=f"awake{pid}")]
    fresh = {pid: data.draw(st.sampled_from(extensions), label=f"fresh{pid}") for pid in senders}
    outsider_votes = {
        pid: data.draw(st.sampled_from(universe), label=f"byzvote{pid}") for pid in outsider_ids
    }

    outputs = {}
    for receiver in clique:
        # Premise: M₀ holds a Λ-extension vote from *every* clique member.
        m0 = [
            InitialVote(
                sender=pid,
                round=0,
                tip=data.draw(st.sampled_from(extensions), label=f"m0{receiver}:{pid}"),
            )
            for pid in clique
        ]
        # Plus arbitrary adversarial M₀ entries from outsiders.
        for pid in outsider_ids:
            if data.draw(st.booleans(), label=f"m0out{receiver}:{pid}"):
                m0.append(
                    InitialVote(
                        sender=pid,
                        round=0,
                        tip=data.draw(st.sampled_from(universe), label=f"m0outtip{receiver}:{pid}"),
                    )
                )
        instance = ExtendedGAInstance(tree, m0)
        # Asynchrony: the adversary delivers an arbitrary subset of the
        # fresh clique votes and any outsider votes it likes.
        for pid, tip in fresh.items():
            if data.draw(st.booleans(), label=f"deliver{receiver}:{pid}"):
                instance.add_round_vote(pid, tip)
        for pid, tip in outsider_votes.items():
            if data.draw(st.booleans(), label=f"deliverout{receiver}:{pid}"):
                instance.add_round_vote(pid, tip)
        outputs[receiver] = instance.output()

    assert check_clique_validity(tree, lam, frozenset(clique), outputs)
