"""The asynchrony-resilient protocol: Theorems 1–3 behaviours."""

import pytest

from repro.analysis.checkers import (
    check_asynchrony_resilience,
    check_healing,
    check_safety,
)
from repro.analysis.metrics import decision_gaps
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import SplitVoteAttack, WithholdingAdversary
from repro.sleepy.network import WindowedAsynchrony


def attack_config(protocol: str, eta: int, pi: int, target: int = 10, n: int = 20) -> TOBRunConfig:
    """Split-vote attack inside a π-round asynchronous window ending at ``target``."""
    byz = list(range(n - n // 5, n))
    return TOBRunConfig(
        n=n,
        rounds=target + 14,
        protocol=protocol,
        eta=eta,
        adversary=SplitVoteAttack(byz, target_round=target),
        network=WindowedAsynchrony(ra=target - pi, pi=pi),
    )


def test_eta_must_be_nonnegative(registry, verifier):
    from repro.core.resilient_tob import ResilientTOBProcess

    with pytest.raises(ValueError, match="η"):
        ResilientTOBProcess(0, registry.secret_key(0), verifier, eta=-1)


def test_synchronous_behaviour_matches_mmr_exactly():
    """Under synchrony the modification is invisible: same decisions,
    same rounds, same logs (the paper's 'matches the latency and
    throughput of the original protocol')."""
    base = run_tob(TOBRunConfig(n=8, rounds=30, protocol="mmr"))
    for eta in (1, 3, 6):
        modified = run_tob(TOBRunConfig(n=8, rounds=30, protocol="resilient", eta=eta))
        assert [
            (d.pid, d.round, d.view, d.tip) for d in modified.decisions
        ] == [(d.pid, d.round, d.view, d.tip) for d in base.decisions]


def test_eta_zero_is_the_original_protocol_under_attack():
    """η = 0 degenerates to MMR — including its vulnerability."""
    broken = run_tob(attack_config("resilient", eta=0, pi=1))
    assert not check_safety(broken).ok


def test_theorem2_resilient_for_pi_below_eta():
    for eta, pi in ((2, 1), (4, 1), (4, 3)):
        trace = run_tob(attack_config("resilient", eta=eta, pi=pi))
        assert check_safety(trace).ok, f"safety lost at eta={eta}, pi={pi}"
        report = check_asynchrony_resilience(trace, ra=10 - pi, pi=pi)
        assert report.ok, f"resilience lost at eta={eta}, pi={pi}"


def test_mmr_breaks_where_resilient_survives():
    assert not check_safety(run_tob(attack_config("mmr", eta=0, pi=1))).ok
    assert check_safety(run_tob(attack_config("resilient", eta=2, pi=1))).ok


def test_theorem3_healing_after_blackout():
    """A π-round total blackout: no decisions during it, prompt recovery after."""
    eta, pi, ra = 4, 3, 9
    trace = run_tob(
        TOBRunConfig(
            n=12,
            rounds=30,
            protocol="resilient",
            eta=eta,
            adversary=WithholdingAdversary(),
            network=WindowedAsynchrony(ra=ra, pi=pi),
        )
    )
    assert check_safety(trace).ok
    report = check_healing(trace, last_async_round=ra + pi, k=1)
    assert report.ok, (report.first_decision_after, report.rounds_to_decision)


def test_decisions_resume_quickly_after_asynchrony():
    eta, pi, ra = 4, 2, 9
    trace = run_tob(
        TOBRunConfig(
            n=12,
            rounds=26,
            protocol="resilient",
            eta=eta,
            adversary=WithholdingAdversary(),
            network=WindowedAsynchrony(ra=ra, pi=pi),
        )
    )
    post = [d.round for d in trace.decisions if d.round > ra + pi]
    assert post and min(post) <= ra + pi + 4  # within ~1 view of healing


def test_resilience_with_blackout_adversary_any_pi_below_eta():
    """Withholding everything for π < η rounds can never cause a fork."""
    for pi in (1, 2, 3):
        trace = run_tob(
            TOBRunConfig(
                n=10,
                rounds=28,
                protocol="resilient",
                eta=4,
                adversary=WithholdingAdversary(),
                network=WindowedAsynchrony(ra=9, pi=pi),
            )
        )
        assert check_safety(trace).ok
        assert check_asynchrony_resilience(trace, ra=9, pi=pi).ok


def test_latency_unaffected_by_eta_under_synchrony():
    for eta in (0, 2, 8):
        trace = run_tob(TOBRunConfig(n=8, rounds=30, protocol="resilient", eta=eta))
        gaps = decision_gaps(trace)
        assert gaps and all(gap == 2 for gap in gaps)
