"""Analytic bounds: Figure 1 and the §2.3 algebra, exactly."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    beta_tilde,
    beta_tilde_one_third,
    decision_threshold,
    eta_for_resilience,
    figure1_curve,
    gamma_for_beta_tilde,
    max_churn,
    max_resilient_pi,
)

THIRD = Fraction(1, 3)


def test_static_participation_recovers_original_beta():
    """γ = 0 ⇒ β̃ = β (paper: 'no extra stronger assumption is required')."""
    for beta in (Fraction(1, 4), THIRD, Fraction(1, 2)):
        assert beta_tilde(beta, 0) == beta


def test_figure1_closed_form_matches_general_formula():
    """β̃(1/3, γ) = (1 − 3γ)/(3 − 5γ) — the formula printed in Figure 1."""
    for i in range(0, 33):
        gamma = Fraction(i, 100)
        assert beta_tilde(THIRD, gamma) == beta_tilde_one_third(gamma)


def test_figure1_plotted_points():
    """Spot values read off the Figure 1 axes."""
    assert beta_tilde_one_third(0) == THIRD
    assert beta_tilde_one_third(Fraction(1, 5)) == Fraction(1, 5)  # fixpoint at γ=0.2
    assert beta_tilde_one_third(Fraction(3, 10)) == Fraction(1, 15)  # γ=0.3 → 0.0667
    # Approaching the stall threshold the tolerable failure ratio vanishes.
    assert beta_tilde_one_third(Fraction(33, 100)) == Fraction(1, 135)


def test_beta_tilde_monotone_decreasing_in_gamma():
    previous = None
    for i in range(0, 33):
        value = beta_tilde(THIRD, Fraction(i, 100))
        if previous is not None:
            assert value < previous
        previous = value


def test_beta_tilde_domain_validation():
    with pytest.raises(ValueError, match="γ"):
        beta_tilde(THIRD, THIRD)  # γ must be strictly below β
    with pytest.raises(ValueError, match="γ"):
        beta_tilde(THIRD, Fraction(-1, 10))
    with pytest.raises(ValueError, match="β"):
        beta_tilde(Fraction(0), Fraction(0))
    with pytest.raises(ValueError, match="β"):
        beta_tilde(Fraction(1), Fraction(0))


@given(
    beta=st.fractions(min_value=Fraction(1, 100), max_value=Fraction(1, 2)),
    scale=st.fractions(min_value=0, max_value=Fraction(99, 100)),
)
def test_beta_tilde_bounded_by_beta(beta, scale):
    gamma = beta * scale
    value = beta_tilde(beta, gamma)
    assert 0 < value <= beta
    assert (value == beta) == (gamma == 0)


@given(
    beta=st.fractions(min_value=Fraction(1, 100), max_value=Fraction(1, 2)),
    scale=st.fractions(min_value=Fraction(1, 100), max_value=1),
)
def test_gamma_inversion_roundtrip(beta, scale):
    target = beta * scale
    gamma = gamma_for_beta_tilde(beta, target)
    assert beta_tilde(beta, gamma) == target


def test_gamma_inversion_validation():
    with pytest.raises(ValueError):
        gamma_for_beta_tilde(THIRD, Fraction(1, 2))  # target above β
    with pytest.raises(ValueError):
        gamma_for_beta_tilde(THIRD, 0)


def test_figure1_curve_shape():
    curve = figure1_curve(points=41)
    assert len(curve) == 41
    gammas = [g for g, _ in curve]
    values = [v for _, v in curve]
    assert gammas[0] == 0 and values[0] == THIRD
    assert all(a < b for a, b in zip(gammas, gammas[1:]))
    assert all(a > b for a, b in zip(values, values[1:]))
    assert values[-1] < Fraction(1, 100)  # near the stall threshold


def test_figure1_curve_validation():
    with pytest.raises(ValueError):
        figure1_curve(points=1)
    with pytest.raises(ValueError):
        figure1_curve(gamma_max=THIRD)


def test_stall_and_quorum_constants():
    assert max_churn(THIRD) == THIRD
    assert decision_threshold(THIRD) == Fraction(2, 3)
    assert decision_threshold(Fraction(1, 4)) == Fraction(3, 4)


def test_eta_pi_duality():
    assert eta_for_resilience(0) == 1
    assert eta_for_resilience(3) == 4
    assert max_resilient_pi(4) == 3
    assert max_resilient_pi(0) == 0
    for pi in range(6):
        assert max_resilient_pi(eta_for_resilience(pi)) == pi
    with pytest.raises(ValueError):
        eta_for_resilience(-1)
    with pytest.raises(ValueError):
        max_resilient_pi(-1)
