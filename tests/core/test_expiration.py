"""Latest-unexpired vote store: windows, precedence, equivocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expiration import LatestVoteStore


def test_latest_picks_most_recent_round():
    store = LatestVoteStore()
    store.record(0, 1, "a")
    store.record(0, 3, "b")
    store.record(0, 2, "c")
    assert store.latest(0, 5) == {0: "b"}
    assert store.latest(0, 2) == {0: "c"}
    assert store.latest(0, 1) == {0: "a"}


def test_window_bounds_are_inclusive():
    store = LatestVoteStore()
    store.record(0, 5, "a")
    assert store.latest(5, 5) == {0: "a"}
    assert store.latest(6, 9) == {}
    assert store.latest(0, 4) == {}


def test_future_tagged_votes_invisible_until_window_reaches_them():
    store = LatestVoteStore()
    store.record(0, 9, "future")
    store.record(0, 3, "now")
    assert store.latest(0, 5) == {0: "now"}
    assert store.latest(0, 9) == {0: "future"}


def test_equivocation_at_latest_round_discards_sender():
    store = LatestVoteStore()
    store.record(0, 2, "old")
    store.record(0, 4, "a")
    store.record(0, 4, "b")
    # Latest round equivocates: no fallback to round 2 (conservative).
    assert store.latest(0, 5) == {}
    # A window that ends before the equivocation still sees the old vote.
    assert store.latest(0, 3) == {0: "old"}


def test_equivocation_then_clean_later_round_recovers():
    store = LatestVoteStore()
    store.record(0, 4, "a")
    store.record(0, 4, "b")
    store.record(0, 5, "clean")
    assert store.latest(0, 5) == {0: "clean"}


def test_duplicate_identical_votes_are_not_equivocation():
    store = LatestVoteStore()
    store.record(0, 4, "a")
    store.record(0, 4, "a")
    assert store.latest(0, 5) == {0: "a"}


def test_none_tip_is_a_valid_vote():
    store = LatestVoteStore()
    store.record(0, 4, None)
    assert store.latest(0, 5) == {0: None}
    store.record(0, 4, "a")  # differs from None: equivocation
    assert store.latest(0, 5) == {}


def test_multiple_senders_independent():
    store = LatestVoteStore()
    store.record(0, 1, "a")
    store.record(1, 2, "b")
    store.record(2, 3, "c")
    assert store.latest(2, 3) == {1: "b", 2: "c"}


def test_empty_window():
    store = LatestVoteStore()
    store.record(0, 1, "a")
    assert store.latest(3, 2) == {}


def test_prune_drops_only_older_rounds():
    store = LatestVoteStore()
    store.record(0, 1, "a")
    store.record(0, 5, "b")
    store.record(1, 2, "c")
    dropped = store.prune(3)
    assert dropped == 2
    assert store.latest(0, 10) == {0: "b"}
    assert store.rounds_of(0) == (5,)
    assert store.rounds_of(1) == ()
    assert len(store) == 1


@given(
    votes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # sender
            st.integers(min_value=0, max_value=12),  # round
            st.sampled_from(["a", "b", None]),  # tip
        ),
        max_size=40,
    ),
    lo=st.integers(min_value=0, max_value=12),
    hi=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=200)
def test_latest_matches_reference_model(votes, lo, hi):
    """The store agrees with a brute-force reference implementation."""
    store = LatestVoteStore()
    for sender, round_number, tip in votes:
        store.record(sender, round_number, tip)

    expected: dict[int, object] = {}
    for sender in {v[0] for v in votes}:
        in_window = [(r, t) for s, r, t in votes if s == sender and lo <= r <= hi]
        if not in_window:
            continue
        best = max(r for r, _ in in_window)
        tips = {t for r, t in in_window if r == best}
        if len(tips) == 1:
            expected[sender] = tips.pop()
    assert store.latest(lo, hi) == expected


@given(
    votes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["a", "b"]),
        ),
        max_size=30,
    ),
    cutoff=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=100)
def test_prune_never_affects_windows_at_or_above_cutoff(votes, cutoff):
    store = LatestVoteStore()
    mirror = LatestVoteStore()
    for sender, round_number, tip in votes:
        store.record(sender, round_number, tip)
        mirror.record(sender, round_number, tip)
    store.prune(cutoff)
    assert store.latest(cutoff, 9) == mirror.latest(cutoff, 9)
