"""Incremental vote tallies vs brute-force recounts, and equivocator
accountability under interleaved sleep/wake delivery schedules.

The round-bucketed :class:`LatestVoteStore` serves the protocol's
rolling GA windows incrementally; every observable — ``latest`` over
*any* window, ``equivocators``, ``rounds_of``, ``len``, ``prune``
counts — must stay bit-identical to the naive reference implementation
(the pre-refactor store, reproduced verbatim below) under arbitrary
interleavings of records, queries, table merges, and prunes.
"""

import random

import pytest

from repro.core.expiration import LatestVoteStore
from repro.harness import TOBRunConfig
from repro.sleepy.adversary import EquivocatingVoteAdversary
from repro.sleepy.messages import EQUIVOCATED_VOTE
from repro.sleepy.schedule import RandomChurnSchedule


class NaiveLatestVoteStore:
    """The pre-refactor per-sender store — the brute-force oracle."""

    _EQUIVOCATED = object()
    _MISSING = object()

    def __init__(self):
        self._by_sender = {}

    def __len__(self):
        return sum(len(rounds) for rounds in self._by_sender.values())

    def record(self, sender, round_number, tip):
        rounds = self._by_sender.setdefault(sender, {})
        existing = rounds.get(round_number, self._MISSING)
        if existing is self._MISSING:
            rounds[round_number] = tip
        elif existing is not self._EQUIVOCATED and existing != tip:
            rounds[round_number] = self._EQUIVOCATED

    def latest(self, window_lo, window_hi):
        if window_lo > window_hi:
            return {}
        result = {}
        for sender, rounds in self._by_sender.items():
            best_round = -1
            for r in rounds:
                if window_lo <= r <= window_hi and r > best_round:
                    best_round = r
            if best_round < 0:
                continue
            tip = rounds[best_round]
            if tip is self._EQUIVOCATED:
                continue
            result[sender] = tip
        return result

    def rounds_of(self, sender):
        return tuple(sorted(self._by_sender.get(sender, ())))

    def equivocators(self):
        return frozenset(
            sender
            for sender, rounds in self._by_sender.items()
            if any(tip is self._EQUIVOCATED for tip in rounds.values())
        )

    def prune(self, before_round):
        dropped = 0
        for sender in list(self._by_sender):
            rounds = self._by_sender[sender]
            stale = [r for r in rounds if r < before_round]
            for r in stale:
                del rounds[r]
            dropped += len(stale)
            if not rounds:
                del self._by_sender[sender]
        return dropped


def assert_equivalent(store, naive, lo, hi):
    assert store.latest(lo, hi) == naive.latest(lo, hi), (lo, hi)
    assert store.equivocators() == naive.equivocators()
    assert len(store) == len(naive)


# ----------------------------------------------------------------------
# Randomised interleavings against the oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_interleaved_records_queries_and_prunes_match_oracle(seed):
    """Protocol-shaped access: rolling windows, trailing prunes, and a
    random mix of timely, late, equivocating, and post-dated votes."""
    rng = random.Random(seed)
    eta = rng.choice([0, 1, 2, 4])
    store, naive = LatestVoteStore(), NaiveLatestVoteStore()
    senders = range(8)
    for g in range(40):
        for sender in senders:
            if rng.random() < 0.8:
                tagged = g if rng.random() < 0.8 else rng.randint(max(0, g - 4), g + 3)
                tip = rng.choice(["a", "b", "c", None])
                store.record(sender, tagged, tip)
                naive.record(sender, tagged, tip)
                if rng.random() < 0.1:  # same-round equivocation
                    other = rng.choice(["a", "b", "d"])
                    store.record(sender, tagged, other)
                    naive.record(sender, tagged, other)
        # The protocol's rolling query (exercises the roll-forward path).
        assert_equivalent(store, naive, max(0, g - eta), g)
        if rng.random() < 0.5:  # an off-pattern window (rebuild path)
            lo = rng.randint(0, 44)
            assert_equivalent(store, naive, lo, lo + rng.randint(0, 6))
        if rng.random() < 0.7:  # trailing expiration
            cutoff = g - eta - rng.randint(0, 2)
            assert store.prune(cutoff) == naive.prune(cutoff)
            assert_equivalent(store, naive, max(0, g - eta), g)
    for sender in senders:
        assert store.rounds_of(sender) == naive.rounds_of(sender)


@pytest.mark.parametrize("seed", range(6))
def test_table_merges_match_per_vote_records(seed):
    """Adopting round-resolved vote tables (the batched ingest path) is
    equivalent to recording the same votes one by one — including
    conflicts *across* deliveries and within-table equivocation marks."""
    rng = random.Random(100 + seed)
    store, naive = LatestVoteStore(), NaiveLatestVoteStore()
    for step in range(30):
        table = {}
        for _ in range(rng.randint(1, 12)):
            r = rng.randint(0, 10)
            sender = rng.randint(0, 5)
            value = rng.choice(["a", "b", None, EQUIVOCATED_VOTE])
            table.setdefault(r, {})[sender] = value
        store.record_table(table)
        for r, delta in table.items():
            for sender, value in delta.items():
                if value is EQUIVOCATED_VOTE:
                    # An in-batch conflict is two different signed votes.
                    naive.record(sender, r, "x")
                    naive.record(sender, r, "y")
                else:
                    naive.record(sender, r, value)
        lo = rng.randint(0, 10)
        assert_equivalent(store, naive, lo, lo + rng.randint(0, 5))
        if rng.random() < 0.3:
            cutoff = rng.randint(0, 8)
            assert store.prune(cutoff) == naive.prune(cutoff)


def test_repeat_query_after_prune_inside_window():
    """Pruning into the cached window must evict exactly the pruned
    entries from the aggregate (the old store recomputed from scratch)."""
    store, naive = LatestVoteStore(), NaiveLatestVoteStore()
    for s, r, tip in [(0, 2, "a"), (1, 4, "b"), (2, 6, "c"), (1, 5, "d")]:
        store.record(s, r, tip)
        naive.record(s, r, tip)
    assert_equivalent(store, naive, 2, 6)  # window cached
    assert store.prune(5) == naive.prune(5)
    assert_equivalent(store, naive, 2, 6)  # same window, post-prune


# ----------------------------------------------------------------------
# Equivocator accountability under interleaved sleep/wake schedules
# ----------------------------------------------------------------------
def test_equivocators_survive_sleep_wake_interleavings():
    """A store fed through sleep gaps — batches of several rounds'
    votes delivered at once, as a waking process receives them — must
    attribute equivocations identically to per-round delivery."""
    gap_store, steady_store = LatestVoteStore(), LatestVoteStore()
    backlog = []
    for r in range(12):
        votes = [(pid, r, "a") for pid in range(4)]
        if r in (3, 7):  # pid 3 double-votes in these rounds
            votes.append((3, r, "b"))
        backlog.extend(votes)
        steady_store.record_batch(votes)
        if r % 4 == 3:  # the sleeper wakes every 4 rounds, catches up
            gap_store.record_batch(backlog)
            backlog = []
    gap_store.record_batch(backlog)
    assert gap_store.equivocators() == steady_store.equivocators() == frozenset({3})
    # After the evidence expires, the accountability set shrinks in both.
    for store in (gap_store, steady_store):
        store.prune(8)
        assert store.equivocators() == frozenset()


@pytest.mark.slow
def test_detected_equivocators_end_to_end_under_churn():
    """End to end: an equivocating adversary under a random sleep/wake
    schedule is caught by every honest process that saw the evidence,
    and nobody honest is ever accused."""
    trace_config = TOBRunConfig(
        n=10,
        rounds=24,
        protocol="resilient",
        eta=3,
        adversary=EquivocatingVoteAdversary([9]),
        schedule=RandomChurnSchedule(10, 0.15, seed=3, min_awake=6),
        seed=3,
    )
    from repro.harness import build_simulation
    from repro.engine.sim_backend import SimulationBackend

    simulation = build_simulation(trace_config)
    SimulationBackend.drive(simulation, trace_config)
    accused = set()
    for pid, process in simulation.processes.items():
        if pid == 9:
            continue
        detected = process.detected_equivocators()
        assert detected <= {9}, f"honest process accused: {detected}"
        accused |= detected
    assert accused == {9}
