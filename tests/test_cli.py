"""CLI commands: parse, run, and print sane tables."""

import pytest

from repro.cli import build_parser, main


def test_figure1_prints_curve(capsys):
    assert main(["figure1", "--points", "5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "0.3333" in out  # β̃(0) = 1/3


def test_run_reports_safety(capsys):
    assert main(["run", "--n", "6", "--rounds", "12", "--protocol", "mmr"]) == 0
    out = capsys.readouterr().out
    assert "Run summary" in out
    assert "safety" in out and "yes" in out


def test_attack_compares_protocols(capsys):
    assert main(["attack", "--n", "20", "--pi", "1", "--eta", "2"]) == 0
    out = capsys.readouterr().out
    assert "mmr (η=0)" in out and "resilient (η=2)" in out
    # The baseline forks; the modified protocol does not.
    mmr_line = next(line for line in out.splitlines() if line.startswith("mmr"))
    resilient_line = next(line for line in out.splitlines() if line.startswith("resilient"))
    assert "no" in mmr_line.split()
    assert "no" not in resilient_line.split()


def test_attack_script_runs_on_the_simulator(capsys):
    assert main(["attack", "--script", "partition-heal", "--n", "8", "--eta", "6"]) == 0
    out = capsys.readouterr().out
    assert "Scripted attack 'partition-heal'" in out
    resilient_line = next(line for line in out.splitlines() if line.startswith("resilient"))
    assert "no" not in resilient_line.split()


def test_attack_script_names_match_the_library():
    from repro.attacks import ATTACKS
    from repro.cli import ATTACK_SCRIPT_NAMES

    assert tuple(sorted(ATTACKS)) == ATTACK_SCRIPT_NAMES


def test_attack_rejects_unknown_script():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["attack", "--script", "no-such-attack"])


def test_soak_reports_worker_death_cleanly(capsys, monkeypatch):
    """The kill-a-worker contract at the CLI layer: a dead worker is a
    one-line failure and exit code 1, not a traceback (the backend-level
    kill itself is pinned in tests/runtime/test_worker.py)."""
    from repro.engine.deploy_backend import DeploymentBackend

    async def doomed(self, spec):
        raise RuntimeError("worker 1 exited with code -9")

    monkeypatch.setattr(DeploymentBackend, "execute_async", doomed)
    assert main(["soak", "--duration", "1", "--n", "4", "--processes", "2"]) == 1
    out = capsys.readouterr().out
    assert "soak: FAILED" in out and "worker 1 exited" in out


def test_run_with_timeline_and_save(capsys, tmp_path):
    target = tmp_path / "run.json"
    assert main(
        ["run", "--n", "5", "--rounds", "10", "--timeline", "--save", str(target)]
    ) == 0
    out = capsys.readouterr().out
    assert "|O_r|" in out  # the strip chart header
    assert target.exists()
    from repro.analysis import check_safety, load_trace

    assert check_safety(load_trace(target)).ok


def test_outage_runs(capsys):
    assert main(["outage", "--n", "20", "--duration", "8"]) == 0
    out = capsys.readouterr().out
    assert "outage" in out.lower()


def test_tune_eta_table(capsys):
    assert main(["tune-eta", "--churn-per-round", "0.02", "--n", "48"]) == 0
    out = capsys.readouterr().out
    assert "η menu" in out
    assert "15" in out  # π for η = 16


def test_deploy_smoke(capsys):
    assert main(["deploy", "--n", "4", "--rounds", "8", "--delta-ms", "10"]) == 0
    out = capsys.readouterr().out
    assert "Deployment summary" in out


def test_soak_runs_as_a_service_and_dumps_metrics(capsys, tmp_path):
    import json

    dump = tmp_path / "soak.json"
    assert (
        main(
            [
                "soak",
                "--duration", "1",
                "--n", "4",
                "--delta-ms", "15",
                "--rate", "4",
                "--churn", "0",
                "--mempool-capacity", "32",
                "--dump", str(dump),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Soak summary" in out
    assert "metrics at http://" in out
    payload = json.loads(dump.read_text())
    assert payload["summary"]["decisions"] > 0
    assert payload["summary"]["safe"] is True
    assert payload["summary"]["shed_protocol_messages"] == 0
    # The dump's metrics section came over a real HTTP scrape.
    assert payload["metrics"]["counters"]["decisions"] == payload["summary"]["decisions"]


def test_sweep_runs_named_grid_and_saves_rows(capsys, tmp_path):
    import json

    target = tmp_path / "rows.json"
    assert main(["sweep", "pi-eta", "--n", "6", "--workers", "0", "--save", str(target)]) == 0
    out = capsys.readouterr().out
    assert "Theorem 2 boundary sweep" in out and "(n=6)" in out
    payload = json.loads(target.read_text())
    assert payload["grid"] == "pi-eta"
    assert len(payload["rows"]) == 18  # η ∈ {2,4,6}, π ∈ 1..η+2
    assert all(row["safe"] for row in payload["rows"] if row["guaranteed"])


def test_sweep_journal_roundtrip_and_resume(capsys, tmp_path):
    """A journaled deploy-smoke sweep resumes to a byte-identical table
    without re-running any cell (the journal holds every row)."""
    journal = tmp_path / "deploy.jsonl"
    assert main(["sweep", "deploy-smoke", "--journal", str(journal)]) == 0
    first = capsys.readouterr().out
    assert "deployment-substrate sweep smoke" in first
    lines = journal.read_text().splitlines()
    assert len(lines) == 3 and "manifest" in lines[0]  # header + one row per cell

    assert main(["sweep", "deploy-smoke", "--journal", str(journal), "--resume"]) == 0
    assert capsys.readouterr().out == first
    assert len(journal.read_text().splitlines()) == 3  # nothing re-journaled


def test_sweep_resume_requires_journal():
    with pytest.raises(SystemExit, match="journal"):
        main(["sweep", "pi-eta", "--resume"])


def test_sweep_rejects_size_override_where_inapplicable():
    with pytest.raises(SystemExit):
        main(["sweep", "sleepiness", "--n", "6"])


def test_sweep_unknown_grid_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "no-such-grid"])


def test_sweep_grid_choices_match_the_registry():
    """The parser's static choices (kept static so ``--help`` does not
    import the batch/engine layers) must track the grid registry."""
    from repro.analysis.batch import GRIDS
    from repro.cli import SWEEP_GRID_NAMES

    assert tuple(sorted(GRIDS)) == tuple(sorted(SWEEP_GRID_NAMES))


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_module_entry_point():
    import subprocess
    import sys

    from tests.conftest import subprocess_env

    result = subprocess.run(
        [sys.executable, "-m", "repro", "figure1", "--points", "3"],
        capture_output=True,
        text=True,
        timeout=60,
        env=subprocess_env(),
    )
    assert result.returncode == 0
    assert "Figure 1" in result.stdout
