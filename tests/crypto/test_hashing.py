"""Canonical encoding: injectivity is what unforgeability rests on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import encode_fields, hash_fields, sha256_hex


def test_field_types_are_tagged():
    # Values that collide under naive str() concatenation must not collide.
    assert encode_fields(1, 2) != encode_fields(12)
    assert encode_fields("12") != encode_fields(12)
    assert encode_fields(b"12") != encode_fields("12")
    assert encode_fields(None) != encode_fields(0)
    assert encode_fields("") != encode_fields(b"")
    assert encode_fields(("a", "b")) != encode_fields("ab")


def test_length_prefixing_prevents_concatenation_collisions():
    assert encode_fields("ab", "c") != encode_fields("a", "bc")
    assert encode_fields(b"ab", b"c") != encode_fields(b"a", b"bc")


def test_nested_tuples_encode_distinctly():
    assert encode_fields((1, (2, 3))) != encode_fields((1, 2, 3))
    assert encode_fields(((),)) != encode_fields(())


def test_negative_and_large_ints():
    assert encode_fields(-1) != encode_fields(255)
    assert encode_fields(2**300) != encode_fields(2**300 + 1)


def test_bool_rejected():
    with pytest.raises(TypeError, match="bool"):
        encode_fields(True)


def test_unsupported_type_rejected():
    with pytest.raises(TypeError, match="unsupported"):
        encode_fields([1, 2])  # type: ignore[arg-type]


def test_hash_fields_is_sha256_of_encoding():
    assert hash_fields(1, "a") == sha256_hex(encode_fields(1, "a"))
    assert len(hash_fields(1)) == 64


scalar = st.one_of(
    st.none(),
    st.integers(min_value=-(2**64), max_value=2**64),
    st.text(max_size=16),
    st.binary(max_size=16),
)
fields = st.lists(scalar, max_size=5).map(tuple)


@given(fields, fields)
def test_encoding_injective_on_random_field_tuples(a, b):
    if a != b:
        assert encode_fields(*a) != encode_fields(*b)
    else:
        assert encode_fields(*a) == encode_fields(*b)
