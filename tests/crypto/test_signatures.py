"""Simulated signatures: sign/verify, attribution, unforgeability."""

import pytest

from repro.crypto.signatures import KeyRegistry


def test_sign_verify_roundtrip(registry):
    key = registry.secret_key(3)
    sig = registry.sign(key, "vote", 7, None)
    assert registry.verify(3, sig, "vote", 7, None)


def test_verification_binds_to_signer(registry):
    key = registry.secret_key(3)
    sig = registry.sign(key, "vote", 7)
    assert not registry.verify(4, sig, "vote", 7)


def test_verification_binds_to_message(registry):
    key = registry.secret_key(3)
    sig = registry.sign(key, "vote", 7)
    assert not registry.verify(3, sig, "vote", 8)
    assert not registry.verify(3, sig, "propose", 7)


def test_garbage_signature_rejected(registry):
    assert not registry.verify(3, "00" * 32, "vote", 7)
    assert not registry.verify(99, "00" * 32, "vote", 7)  # unknown pid


def test_keys_are_deterministic_per_run_seed():
    a = KeyRegistry(4, run_seed=1)
    b = KeyRegistry(4, run_seed=1)
    c = KeyRegistry(4, run_seed=2)
    assert a.secret_key(0) == b.secret_key(0)
    assert a.secret_key(0) != c.secret_key(0)
    assert a.secret_key(0) != a.secret_key(1)


def test_signatures_transfer_across_registry_instances():
    a = KeyRegistry(4, run_seed=1)
    b = KeyRegistry(4, run_seed=1)
    sig = a.sign(a.secret_key(2), "hello")
    assert b.verify(2, sig, "hello")


def test_unknown_pid_has_no_key(registry):
    with pytest.raises(ValueError, match="unknown process"):
        registry.secret_key(registry.n)


def test_registry_requires_processes():
    with pytest.raises(ValueError):
        KeyRegistry(0)


def test_secret_repr_does_not_leak_seed(registry):
    key = registry.secret_key(1)
    assert key.seed.hex() not in repr(key)
