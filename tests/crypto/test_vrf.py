"""Simulated VRF: determinism, verifiability, uniformity, unforgeability."""

from repro.crypto.signatures import KeyRegistry
from repro.crypto.vrf import VRFOutput, evaluate_vrf, sortition_value, verify_vrf


def test_vrf_is_deterministic(registry):
    key = registry.secret_key(5)
    a = evaluate_vrf(registry, key, 3)
    b = evaluate_vrf(registry, key, 3)
    assert a == b


def test_vrf_varies_with_input_and_key(registry):
    key5, key6 = registry.secret_key(5), registry.secret_key(6)
    assert evaluate_vrf(registry, key5, 3) != evaluate_vrf(registry, key5, 4)
    assert evaluate_vrf(registry, key5, 3) != evaluate_vrf(registry, key6, 3)


def test_vrf_verifies(registry):
    key = registry.secret_key(5)
    output = evaluate_vrf(registry, key, 3)
    assert verify_vrf(registry, 5, 3, output)


def test_vrf_rejects_wrong_claims(registry):
    key = registry.secret_key(5)
    output = evaluate_vrf(registry, key, 3)
    assert not verify_vrf(registry, 6, 3, output)  # wrong process
    assert not verify_vrf(registry, 5, 4, output)  # wrong input
    forged_value = VRFOutput(value_num=output.value_num ^ 1, proof=output.proof)
    assert not verify_vrf(registry, 5, 3, forged_value)  # tampered value
    forged_proof = VRFOutput(value_num=output.value_num, proof="00" * 32)
    assert not verify_vrf(registry, 5, 3, forged_proof)  # tampered proof


def test_vrf_value_in_unit_interval(registry):
    for pid in range(8):
        output = evaluate_vrf(registry, registry.secret_key(pid), 1)
        assert 0.0 <= output.value < 1.0


def test_vrf_values_look_uniform():
    """Coarse uniformity: over many (pid, view) samples the mean is ~1/2.

    This is a smoke test of the random-oracle substitution, not a
    statistical acceptance test; bounds are deliberately loose.
    """
    registry = KeyRegistry(64, run_seed=11)
    values = [
        evaluate_vrf(registry, registry.secret_key(pid), view).value
        for pid in range(64)
        for view in range(8)
    ]
    mean = sum(values) / len(values)
    assert 0.45 < mean < 0.55
    assert min(values) < 0.1 and max(values) > 0.9


def test_sortition_ranking_is_exact(registry):
    a = evaluate_vrf(registry, registry.secret_key(0), 1)
    b = evaluate_vrf(registry, registry.secret_key(1), 1)
    assert (sortition_value(a) > sortition_value(b)) == (a.value_num > b.value_num)
